// Package kernel is the simulated operating system: CPUs with context
// switching and timer ticks, the syscall surface (fork, exit, sleep,
// sched_setscheduler, sched_setaffinity, nice), execution of task work with
// cache-warmth and SMT effects, and the glue to the scheduler core.
//
// The kernel is deliberately structured like the system the paper modifies:
// policy lives in the sched packages, mechanism lives here. Experiments
// construct a Kernel per run, boot it, spawn a workload, and read the perf
// counters.
package kernel

import (
	"fmt"

	"hplsim/internal/cache"
	"hplsim/internal/perf"
	"hplsim/internal/sched"
	"hplsim/internal/sched/cfs"
	"hplsim/internal/sched/hpc"
	"hplsim/internal/sched/idleclass"
	"hplsim/internal/sched/rt"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

// Tracer receives scheduling events for timeline reconstruction (Figure 1).
// All methods are called at the instant the event happens.
type Tracer interface {
	// Switch reports a context switch on cpu from prev to next.
	Switch(now sim.Time, cpu int, prev, next *task.Task)
	// Migrate reports that t moved from one CPU to another.
	Migrate(now sim.Time, t *task.Task, from, to int)
	// Wake reports that t became runnable on cpu.
	Wake(now sim.Time, t *task.Task, cpu int)
	// Mark reports a workload-defined event (barrier arrival, release).
	Mark(now sim.Time, t *task.Task, label string)
}

// MigrateKind distinguishes why a task changed CPUs.
type MigrateKind int

const (
	// MigrateFork: placement at fork time chose a CPU other than the
	// parent's (the one migration the paper's HPL policy permits).
	MigrateFork MigrateKind = iota
	// MigrateWake: a wakeup landed the task on a different CPU.
	MigrateWake
	// MigrateBalance: the load balancer moved a queued task.
	MigrateBalance
)

func (m MigrateKind) String() string {
	switch m {
	case MigrateFork:
		return "fork"
	case MigrateWake:
		return "wake"
	case MigrateBalance:
		return "balance"
	default:
		return fmt.Sprintf("MigrateKind(%d)", int(m))
	}
}

// KindTracer is an optional extension of Tracer: implementations also
// receive the kind of every migration. The schedcheck migration oracle
// relies on it to tell permitted fork-time placement from forbidden
// post-placement moves.
type KindTracer interface {
	Tracer
	MigrateK(now sim.Time, t *task.Task, from, to int, kind MigrateKind)
}

// TaskTracer is an optional extension of Tracer: implementations also
// observe task lifecycle edges. Fork reports a freshly created task being
// enqueued for the first time, after fork placement chose cpu and before
// the enqueue (mirroring Wake's ordering, so runqueue counts read by the
// tracer are the tasks ahead of it). Exit reports the running task leaving
// the system. The schedstat accounting layer uses the pair to open the
// first runnable-wait ledger of a task and to close its books.
type TaskTracer interface {
	Tracer
	Fork(now sim.Time, t *task.Task, cpu int)
	Exit(now sim.Time, t *task.Task)
}

// Config parameterises a simulated node.
type Config struct {
	// Topo is the machine topology; defaults to the paper's POWER6.
	Topo topo.Topology
	// HZ is the timer tick frequency; defaults to 250.
	HZ int
	// SwitchCost is the direct cost of a context switch.
	SwitchCost sim.Duration
	// TickCost is the CPU time stolen by each timer interrupt
	// (the paper's "micro noise").
	TickCost sim.Duration
	// Cache is the cache warmth model.
	Cache cache.Model
	// SMTFactors[i] is the per-thread throughput when i other hardware
	// threads of the core are busy. Defaults to {1.0, 0.64} (POWER6-era
	// SMT2: two busy threads each run at 64% of a lone thread).
	SMTFactors []float64
	// Balance selects the load-balancing policy.
	Balance sched.BalancePolicy
	// HPCNaivePlacement disables the HPC class's topology-aware fork
	// placement (ablation A2).
	HPCNaivePlacement bool
	// AdaptiveTick is the NETTICK-style optimisation the paper pairs
	// with HPL (Section V): when an HPC task runs alone on its CPU the
	// periodic tick is stretched to a 10 Hz housekeeping rate, removing
	// most of the timer micro-noise. Ticks return to full rate as soon
	// as another task queues up.
	AdaptiveTick bool
	// FastForward enables virtual-time fast-forward: timer ticks that
	// provably cannot change a scheduling decision (per the classes'
	// NextDecision bounds and the balancer's deadlines) are not
	// dispatched as they happen; their bookkeeping is replayed, tick by
	// tick with identical arithmetic, immediately before the next event
	// that could observe it. The mode is bitwise trace-equivalent to
	// stepping every tick — same completion times, same counters, same
	// dispatch fingerprint — and exists purely to make replications
	// faster. See DESIGN.md, "Virtual-time fast-forward".
	FastForward bool
	// Power parameterises the energy model; zero value uses defaults.
	Power PowerModel
	// CFS are the CFS tunables; zero value uses the defaults.
	CFS cfs.Tunables
	// Seed drives all stochastic behaviour of the run.
	Seed uint64
	// Tracer, if non-nil, receives scheduling events.
	Tracer Tracer
	// NoOverheads zeroes SwitchCost and TickCost instead of applying their
	// defaults, giving the idealised machine on which the schedcheck
	// metamorphic oracles hold exactly.
	NoOverheads bool
	// Chaos enables scheduler fault injection for the property harness.
	Chaos sched.Chaos
	// Naive reverts every wide-node optimisation to the pre-optimisation
	// linear scans — full-span balancing, all-CPU tick catch-up, O(#lanes)
	// engine timer lookup — while keeping identical scheduling behaviour.
	// The scale benchmark uses it to record the naive wide-mask baseline
	// that BENCH_scale.json speedups are measured against.
	Naive bool
	// Shards partitions the node's CPUs into chip-aligned shards whose
	// fast-forward tick catch-up replays on parallel host workers (see
	// DESIGN.md, "Parallel sharding"). 0 or 1 means sequential — the
	// default and the oracle; values above the chip count clamp to it.
	// Results are bitwise identical at any shard count: the parallel
	// phase replays exactly the per-CPU work the sequential loop would,
	// under a conservatively derived synchronization horizon, and merges
	// the cross-shard sums in canonical shard order. Sharding only
	// applies with FastForward set and Naive clear (without elided ticks
	// there is no replay to parallelize); otherwise it is an inert knob.
	Shards int
	// ShardGrain is the minimum number of pending elided-tick instants a
	// catch-up must hold before it fans out over the shard gang; smaller
	// catch-ups run the sequential loop (identical result, no barrier
	// cost). 0 selects the default grain; 1 fans out every eligible
	// catch-up, which the equivalence harnesses use to exercise the
	// parallel machinery on workloads whose catch-ups are naturally
	// small. Results are bitwise identical at any grain.
	ShardGrain int
}

func (c Config) withDefaults() Config {
	if c.Topo == (topo.Topology{}) {
		c.Topo = topo.POWER6()
	}
	if c.HZ == 0 {
		c.HZ = 250
	}
	if c.SwitchCost == 0 {
		c.SwitchCost = 4 * sim.Microsecond
	}
	if c.TickCost == 0 {
		c.TickCost = 3 * sim.Microsecond
	}
	if c.NoOverheads {
		c.SwitchCost = 0
		c.TickCost = 0
	}
	if c.Cache == (cache.Model{}) {
		c.Cache = cache.DefaultModel()
	}
	if len(c.SMTFactors) == 0 {
		c.SMTFactors = []float64{1.0, 0.64}
	}
	if c.CFS == (cfs.Tunables{}) {
		c.CFS = cfs.DefaultTunables()
	}
	if c.Power.isZero() {
		c.Power = DefaultPowerModel()
	}
	return c
}

// cpuState is the kernel's per-CPU structure.
type cpuState struct {
	id   int
	curr *task.Task
	idle *task.Task
	// spanStart anchors the progress accounting of curr: work accrues
	// from this instant. It may sit slightly in the future right after
	// a context switch (switch cost) or a tick (tick cost).
	spanStart sim.Time
	// completion fires when curr's finite work is done.
	completion sim.EventRef
	// lane is the engine timer lane carrying this CPU's periodic tick.
	// Lane ids equal CPU ids, so the engine's lowest-lane-first tie-break
	// doubles as the cross-CPU tick order at a shared instant.
	lane int
	// tickNext is the next instant on this CPU's tick grid, or 0 while
	// the CPU idles (tickless idle). In fast-forward mode the lane may
	// be armed at a later grid instant: the instants in between are
	// elided and replayed on demand (see catchUp).
	tickNext sim.Time
	// ticks counts timer interrupts accounted to this CPU, real and
	// replayed alike.
	ticks uint64
	// reschedPending guards against scheduling multiple reschedule
	// passes at the same instant.
	reschedPending bool
	// inSteps guards runSteps against reentrancy from continuations.
	inSteps bool
}

// coreState is the per-physical-core structure.
type coreState struct {
	// busy accumulates CPU time executed on this core; the difference
	// between two readings bounds the cache eviction a descheduled task
	// suffered.
	busy sim.Duration
}

// Kernel is a booted simulated node.
type Kernel struct {
	Eng   *sim.Engine
	Cfg   Config
	Topo  topo.Topology
	Sched *sched.Scheduler
	Perf  perf.Counters

	cpus  []*cpuState
	cores []*coreState
	idle  *idleclass.Class

	// ticking is a per-word CPU bitmap of CPUs with a live tick grid
	// (tickNext != 0), maintained by armTick/cancelTick. Fast-forward
	// catch-up walks only these bits, so a fully idle socket costs
	// nothing per event.
	ticking []uint64

	tasks  []*task.Task
	nextID int

	energy *energyState

	// ff mirrors Cfg.FastForward. replaying marks an elided-tick replay
	// in progress; vnow is then the instant being replayed, and now()
	// reports it instead of the engine clock so that every time read on
	// the replay path (throttle periods, accounting spans) sees the
	// value it would have seen had the tick been dispatched live.
	ff        bool
	replaying bool
	vnow      sim.Time

	// par is the parallel shard catch-up state, nil unless Cfg.Shards
	// partitions this node (see shardrun.go).
	par *parCatch

	rng *sim.RNG
}

// New boots a node: idle tasks are installed on every CPU, ticks are armed
// lazily when CPUs become busy, and the scheduler class chain RT > HPC >
// CFS > Idle is constructed.
func New(cfg Config) *Kernel {
	cfg = cfg.withDefaults()
	if err := cfg.Topo.Validate(); err != nil {
		panic(err)
	}
	n := cfg.Topo.NumCPUs()
	k := &Kernel{
		Eng:     sim.NewEngine(),
		Cfg:     cfg,
		Topo:    cfg.Topo,
		cpus:    make([]*cpuState, n),
		cores:   make([]*coreState, cfg.Topo.NumCores()),
		ticking: make([]uint64, (n+63)/64),
		rng:     sim.NewRNG(cfg.Seed),
	}
	k.Eng.NaiveLanes = cfg.Naive
	k.energy = newEnergyState(cfg.Topo.NumCores(), n)
	k.idle = idleclass.New(n)
	hpcClass := hpc.New(n)
	hpcClass.Naive = cfg.HPCNaivePlacement
	classes := []sched.Class{
		rt.New(n),
		hpcClass,
		cfs.New(n, cfg.CFS),
		k.idle,
	}
	k.ff = cfg.FastForward
	k.Sched = sched.New(sched.Config{
		Topo:      cfg.Topo,
		Classes:   classes,
		Hooks:     (*hooks)(k),
		Policy:    cfg.Balance,
		NaiveScan: cfg.Naive,
		RNG:       k.rng.Split(0xba1a), // load-balancer tie-break stream
		Now:       k.now,
		Timer: func(d sim.Duration, fn func()) {
			if k.replaying || k.parActive() {
				// A class arming a timer at an elided tick means the
				// tick made a decision after all: the NextDecision
				// bound was wrong. Fail loudly instead of diverging.
				panic("kernel: timer armed during fast-forward tick replay")
			}
			k.Eng.After(d, fn)
		},
		Chaos: cfg.Chaos,
	})
	for i := range k.cores {
		k.cores[i] = &coreState{}
	}
	for cpu := 0; cpu < n; cpu++ {
		c := &cpuState{id: cpu}
		c.lane = k.Eng.NewLane(func() { k.tickFire(c) })
		swapper := k.newTask(fmt.Sprintf("swapper/%d", cpu), task.Idle)
		swapper.CPU = cpu
		swapper.State = task.Running
		swapper.Affinity = topo.MaskOf(cpu)
		c.idle = swapper
		c.curr = swapper
		k.idle.SetIdleTask(cpu, swapper)
		k.cpus[cpu] = c
		k.Sched.SetCurr(cpu, swapper)
	}
	if k.ff {
		k.Eng.BeforeEvent = k.beforeEvent
	}
	k.initShards()
	return k
}

// hooks adapts Kernel to sched.Hooks without exporting the methods on
// Kernel itself.
type hooks Kernel

// Resched implements sched.Hooks.
func (h *hooks) Resched(cpu int) { (*Kernel)(h).resched(cpu) }

// TickAdjust implements sched.TickAdjuster: a scheduler event may have
// moved cpu's next tick-driven decision earlier, so re-aim its timer lane.
func (h *hooks) TickAdjust(cpu int) { (*Kernel)(h).tickAdjust(cpu) }

// Migrated implements sched.Hooks.
func (h *hooks) Migrated(t *task.Task, from, to int) {
	k := (*Kernel)(h)
	k.Perf.Migrations++
	k.Perf.BalanceMoves++
	t.Counters.Migrations++
	k.traceMigrate(t, from, to, MigrateBalance)
}

// traceMigrate reports a migration to the tracer, with its kind when the
// tracer wants kinds.
func (k *Kernel) traceMigrate(t *task.Task, from, to int, kind MigrateKind) {
	if k.Cfg.Tracer == nil {
		return
	}
	if kt, ok := k.Cfg.Tracer.(KindTracer); ok {
		kt.MigrateK(k.Eng.Now(), t, from, to, kind)
	}
	k.Cfg.Tracer.Migrate(k.Eng.Now(), t, from, to)
}

// traceFork reports a fork-time first enqueue to the tracer, if it wants
// lifecycle events.
func (k *Kernel) traceFork(t *task.Task, cpu int) {
	if k.Cfg.Tracer == nil {
		return
	}
	if tt, ok := k.Cfg.Tracer.(TaskTracer); ok {
		tt.Fork(k.now(), t, cpu)
	}
}

// traceExit reports a task exit to the tracer, if it wants lifecycle events.
func (k *Kernel) traceExit(t *task.Task) {
	if k.Cfg.Tracer == nil {
		return
	}
	if tt, ok := k.Cfg.Tracer.(TaskTracer); ok {
		tt.Exit(k.now(), t)
	}
}

// Now reports the current virtual time.
func (k *Kernel) Now() sim.Time { return k.now() }

// now reports kernel time: the engine clock, or the instant of the elided
// tick being replayed.
func (k *Kernel) now() sim.Time {
	if k.replaying {
		return k.vnow
	}
	return k.Eng.Now()
}

// TicksOn reports the timer interrupts accounted to cpu (real and
// replayed), for the fast-forward equivalence tests.
func (k *Kernel) TicksOn(cpu int) uint64 { return k.cpus[cpu].ticks }

// RNG returns a derived random stream for workload use. The label keeps
// workload draws independent of kernel-internal draws.
func (k *Kernel) RNG(label uint64) *sim.RNG { return k.rng.Split(label) }

// Tasks returns all tasks ever created, including idle tasks.
func (k *Kernel) Tasks() []*task.Task { return k.tasks }

// CPUOf reports which CPU the task is running or queued on.
func (k *Kernel) CPUOf(t *task.Task) int { return t.CPU }

// CurrOn reports the task currently running on cpu.
func (k *Kernel) CurrOn(cpu int) *task.Task { return k.cpus[cpu].curr }

// IdleOn reports whether cpu is idle.
func (k *Kernel) IdleOn(cpu int) bool {
	c := k.cpus[cpu]
	return c.curr == c.idle
}

// Run drives the simulation until the given virtual time. In fast-forward
// mode, elided ticks up to the horizon are settled before returning, so
// counters and per-task accounting match what a step-every-tick run shows
// at the same instant.
func (k *Kernel) Run(until sim.Time) {
	if k.par != nil {
		// The shard gang exists only while the simulation is advancing;
		// releasing it here keeps kernels goroutine-free between runs.
		defer k.par.closeGang()
	}
	k.Eng.Run(until)
	if !k.ff {
		k.checkInvariants()
		return
	}
	end := until
	if k.Eng.Stopped() || until == sim.Infinity {
		// Stopped early (or no horizon): settle only to where the engine
		// actually got, exactly as a per-tick run stopped there would be.
		end = k.Eng.Now()
	}
	k.catchUp(end, len(k.cpus))
	k.checkInvariants()
}

// Stop halts the simulation after the current event.
func (k *Kernel) Stop() { k.Eng.Stop() }

func (k *Kernel) newTask(name string, p task.Policy) *task.Task {
	t := &task.Task{
		ID:       k.nextID,
		Name:     name,
		Policy:   p,
		Nice:     0,
		State:    task.New,
		CPU:      0,
		Affinity: k.Topo.AllMask(),
		Cache:    cache.NewState(),
		Spawned:  k.Eng.Now(),
	}
	k.nextID++
	k.tasks = append(k.tasks, t)
	return t
}
