package kernel

// Randomised whole-system property tests: arbitrary mixes of policies,
// affinities, sleep patterns, and balancing policies must preserve the
// kernel's global invariants. These catch state-machine corruption that
// targeted tests miss.

import (
	"fmt"
	"math"
	"testing"

	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

// buildRandomWorkload spawns 5-20 tasks with random policies, affinities,
// and behaviours on k.
func buildRandomWorkload(k *Kernel, rng *sim.RNG) []*task.Task {
	n := 5 + rng.Intn(16)
	policies := []task.Policy{task.Normal, task.Normal, task.Normal,
		task.HPC, task.RR, task.FIFO}
	var tasks []*task.Task
	for i := 0; i < n; i++ {
		pol := policies[rng.Intn(len(policies))]
		attr := Attr{
			Name:        fmt.Sprintf("fz%d", i),
			Policy:      pol,
			Sensitivity: rng.Float64(),
		}
		if pol.RealTime() {
			attr.RTPrio = 1 + rng.Intn(99)
		} else if pol == task.Normal {
			attr.Nice = rng.Intn(40) - 20
		}
		if rng.Float64() < 0.3 {
			attr.Affinity = topo.MaskOf(rng.Intn(k.Topo.NumCPUs()))
		}
		kind := rng.Intn(3)
		r := rng.Split(uint64(i) + 100)
		tasks = append(tasks, k.Spawn(nil, attr, func(p *Proc) {
			switch kind {
			case 0: // finite compute, then exit
				p.Compute(r.UniformDuration(sim.Millisecond, 300*sim.Millisecond),
					func() { p.Exit() })
			case 1: // sleep/compute daemon
				var cycle func()
				cycle = func() {
					p.Sleep(r.UniformDuration(sim.Millisecond, 50*sim.Millisecond), func() {
						p.Compute(r.UniformDuration(100*sim.Microsecond, 10*sim.Millisecond), cycle)
					})
				}
				cycle()
			default: // CPU hog for the whole run
				p.Compute(sim.Duration(math.MaxInt64/4), func() { p.Exit() })
			}
		}))
	}
	return tasks
}

// checkInvariants asserts the kernel's global consistency at any instant.
func checkInvariants(t *testing.T, k *Kernel, tasks []*task.Task, horizon sim.Duration) {
	t.Helper()

	// 1. State/queue consistency for every task.
	for _, tk := range tasks {
		switch tk.State {
		case task.Runnable:
			if !tk.OnRq {
				t.Fatalf("%v runnable but not queued", tk)
			}
		case task.Running:
			if tk.OnRq {
				t.Fatalf("%v running but still queued", tk)
			}
			if k.CurrOn(tk.CPU) != tk {
				t.Fatalf("%v claims to run on cpu%d but curr is %v",
					tk, tk.CPU, k.CurrOn(tk.CPU))
			}
		case task.Sleeping, task.Dead:
			if tk.OnRq {
				t.Fatalf("%v %v but queued", tk, tk.State)
			}
		case task.New:
			t.Fatalf("%v still New after run", tk)
		}
		if !tk.Affinity.Has(tk.CPU) && tk.State == task.Running {
			t.Fatalf("%v running outside its affinity %v", tk, tk.Affinity)
		}
	}

	// 2. Exactly one running task per CPU (possibly the idle task).
	for cpu := 0; cpu < k.Topo.NumCPUs(); cpu++ {
		curr := k.CurrOn(cpu)
		if curr == nil || curr.State != task.Running {
			t.Fatalf("cpu%d curr %v not running", cpu, curr)
		}
	}

	// 3. Counter arithmetic: every accounted switch had a non-idle prev.
	if k.Perf.VoluntarySwitches+k.Perf.InvoluntarySwitches > k.Perf.ContextSwitches {
		t.Fatalf("switch breakdown exceeds total: %+v", k.Perf)
	}

	// 4. No task consumed more CPU than wall time; the node consumed no
	// more than ncpu x wall.
	var sum sim.Duration
	for _, tk := range tasks {
		if tk.SumExec > horizon+sim.Millisecond {
			t.Fatalf("%v consumed %v over a %v horizon", tk, tk.SumExec, horizon)
		}
		sum += tk.SumExec
	}
	if limit := sim.Duration(k.Topo.NumCPUs()) * horizon; sum > limit+sim.Millisecond {
		t.Fatalf("total CPU time %v exceeds capacity %v", sum, limit)
	}

	// 5. Cache warmth stays in [0,1].
	for _, tk := range tasks {
		if tk.Cache.Warmth < 0 || tk.Cache.Warmth > 1 {
			t.Fatalf("%v warmth %v out of range", tk, tk.Cache.Warmth)
		}
	}
}

func TestFuzzRandomWorkloads(t *testing.T) {
	policies := []sched.BalancePolicy{
		sched.BalanceStandard, sched.BalanceHPL,
		sched.BalanceHPLDynamic, sched.BalanceNone,
	}
	const seeds = 60
	for seed := uint64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(seed)
			k := New(Config{
				Topo:    topo.POWER6(),
				Balance: policies[rng.Intn(len(policies))],
				HZ:      []int{100, 250, 1000}[rng.Intn(3)],
				Seed:    seed,
			})
			tasks := buildRandomWorkload(k, rng.Split(1))
			horizon := rng.UniformDuration(100*sim.Millisecond, 2*sim.Second)
			k.Run(sim.Time(horizon))
			checkInvariants(t, k, tasks, horizon)
		})
	}
}

func TestFuzzDeterminism(t *testing.T) {
	// Any random workload must replay bit-identically from its seed.
	for seed := uint64(100); seed < 110; seed++ {
		run := func() (uint64, uint64, sim.Duration) {
			rng := sim.NewRNG(seed)
			k := New(Config{Topo: topo.POWER6(), Seed: seed})
			tasks := buildRandomWorkload(k, rng.Split(1))
			k.Run(sim.Time(sim.Second))
			var sum sim.Duration
			for _, tk := range tasks {
				sum += tk.SumExec
			}
			return k.Perf.ContextSwitches, k.Perf.Migrations, sum
		}
		c1, m1, s1 := run()
		c2, m2, s2 := run()
		if c1 != c2 || m1 != m2 || s1 != s2 {
			t.Fatalf("seed %d not deterministic: (%d,%d,%v) vs (%d,%d,%v)",
				seed, c1, m1, s1, c2, m2, s2)
		}
	}
}

func TestFuzzSmallTopologies(t *testing.T) {
	// The invariants hold on degenerate machines too.
	shapes := []topo.Topology{
		{Chips: 1, CoresPerChip: 1, ThreadsPerCore: 1},
		{Chips: 1, CoresPerChip: 1, ThreadsPerCore: 2},
		{Chips: 1, CoresPerChip: 2, ThreadsPerCore: 1},
		{Chips: 4, CoresPerChip: 4, ThreadsPerCore: 2},
	}
	for i, tp := range shapes {
		rng := sim.NewRNG(uint64(i) + 500)
		k := New(Config{Topo: tp, Seed: uint64(i) + 500})
		tasks := buildRandomWorkload(k, rng.Split(1))
		// Clamp single-CPU affinities drawn for bigger machines.
		horizon := 500 * sim.Millisecond
		k.Run(sim.Time(horizon))
		checkInvariants(t, k, tasks, horizon)
	}
}
