//go:build invariants

package kernel

import (
	"hplsim/internal/invariant"
	"hplsim/internal/task"
)

// checkInvariants sweeps the whole node for scheduler-accounting
// corruption. It runs at the end of every reschedule pass and every timer
// tick when built with the invariants tag:
//
//   - the class chain is ordered correctly (delegated to the scheduler core);
//   - every CPU has a current task, and that task is not simultaneously
//     sitting on a runqueue;
//   - a non-idle current task agrees about which CPU it runs on and is in
//     the Running state;
//   - per-CPU runqueue accounting closes: the number of tasks claiming
//     "queued on cpu" (OnRq with CPU == cpu) equals what the class
//     runqueues of that CPU report. A task linked into two runqueues, or
//     a stale OnRq flag after a lost dequeue, breaks the equality on some
//     CPU and panics here instead of skewing an experiment.
func (k *Kernel) checkInvariants() {
	k.Sched.CheckInvariants()

	queued := make([]int, len(k.cpus))
	for _, t := range k.tasks {
		if !t.OnRq {
			continue
		}
		invariant.Check(t.State == task.Runnable,
			"kernel: task %s is on a runqueue in state %v", t.Name, t.State)
		invariant.Check(t.CPU >= 0 && t.CPU < len(k.cpus),
			"kernel: queued task %s claims CPU %d of %d", t.Name, t.CPU, len(k.cpus))
		queued[t.CPU]++
	}
	for cpu, c := range k.cpus {
		invariant.Check(c.curr != nil, "kernel: cpu %d has no current task", cpu)
		invariant.Check(!c.curr.OnRq,
			"kernel: cpu %d current task %s is still on a runqueue", cpu, c.curr.Name)
		if c.curr != c.idle {
			invariant.Check(c.curr.CPU == cpu,
				"kernel: cpu %d runs task %s which claims CPU %d", cpu, c.curr.Name, c.curr.CPU)
			// A current task that just blocked or exited stays curr until
			// the pending reschedule pass (queued at the same instant)
			// switches it out; any other non-Running state is corruption.
			invariant.Check(c.curr.State == task.Running || c.reschedPending,
				"kernel: cpu %d current task %s is in state %v with no reschedule pending",
				cpu, c.curr.Name, c.curr.State)
		}
		nq := k.Sched.NrQueued(cpu)
		invariant.Check(queued[cpu] == nq,
			"kernel: cpu %d has %d tasks claiming to be queued but classes hold %d "+
				"(task on two runqueues or stale OnRq)", cpu, queued[cpu], nq)
	}
}
