package topo

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// maskModel is the reference implementation the bitset is checked against:
// a plain set of CPU numbers.
type maskModel map[int]bool

func (mm maskModel) cpus() []int {
	out := make([]int, 0, len(mm))
	for c := range mm {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// checkAgainstModel verifies every observer of m against the model.
func checkAgainstModel(t *testing.T, m CPUMask, mm maskModel, probe []int) {
	t.Helper()
	if m.Count() != len(mm) {
		t.Fatalf("Count = %d, model has %d", m.Count(), len(mm))
	}
	if m.Empty() != (len(mm) == 0) {
		t.Fatalf("Empty = %v, model has %d members", m.Empty(), len(mm))
	}
	want := mm.cpus()
	got := m.CPUs()
	if len(got) != len(want) {
		t.Fatalf("CPUs = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("CPUs = %v, want %v (ForEach order broken at %d)", got, want, i)
		}
	}
	first := -1
	if len(want) > 0 {
		first = want[0]
	}
	if m.First() != first {
		t.Fatalf("First = %d, want %d", m.First(), first)
	}
	for _, c := range probe {
		if m.Has(c) != mm[c] {
			t.Fatalf("Has(%d) = %v, model says %v", c, m.Has(c), mm[c])
		}
	}
	// Word/NumWords agree with membership.
	for w := 0; w < m.NumWords()+1; w++ {
		word := m.Word(w)
		for b := 0; b < 64; b++ {
			if word&(1<<uint(b)) != 0 != mm[w*64+b] {
				t.Fatalf("Word(%d) bit %d disagrees with model", w, b)
			}
		}
	}
}

// boundaryCPUs are the widths the issue calls out: around one-, two-, and
// many-word boundaries.
var boundaryCPUs = []int{0, 1, 62, 63, 64, 65, 126, 127, 128, 129, 1022, 1023, 1024}

func TestMaskModelBoundaries(t *testing.T) {
	for _, n := range boundaryCPUs {
		m := MaskAll(n)
		mm := maskModel{}
		for c := 0; c < n; c++ {
			mm[c] = true
		}
		checkAgainstModel(t, m, mm, boundaryCPUs)
		if n > 0 {
			m2 := m.Remove(n - 1).Remove(0)
			mm2 := maskModel{}
			for c := 1; c < n-1; c++ {
				mm2[c] = true
			}
			checkAgainstModel(t, m2, mm2, boundaryCPUs)
		}
	}
}

func TestMaskModelRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := CPUMask{}
		mm := maskModel{}
		width := boundaryCPUs[rng.Intn(len(boundaryCPUs))] + 1
		for op := 0; op < 300; op++ {
			c := rng.Intn(width)
			switch rng.Intn(3) {
			case 0:
				m = m.Add(c)
				mm[c] = true
			case 1:
				m = m.Remove(c)
				delete(mm, c)
			case 2:
				if m.Has(c) != mm[c] {
					t.Fatalf("Has(%d) diverged", c)
				}
			}
		}
		checkAgainstModel(t, m, mm, []int{0, 63, 64, 127, 128, width - 1, width})
	}
}

func TestMaskModelAnd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		width := boundaryCPUs[rng.Intn(len(boundaryCPUs))] + 1
		a, b := CPUMask{}, CPUMask{}
		am, bm := maskModel{}, maskModel{}
		for i := 0; i < 100; i++ {
			c := rng.Intn(width)
			if rng.Intn(2) == 0 {
				a = a.Add(c)
				am[c] = true
			} else {
				b = b.Add(c)
				bm[c] = true
			}
			if rng.Intn(4) == 0 {
				c2 := rng.Intn(width)
				a = a.Add(c2)
				am[c2] = true
				b = b.Add(c2)
				bm[c2] = true
			}
		}
		want := maskModel{}
		for c := range am {
			if bm[c] {
				want[c] = true
			}
		}
		checkAgainstModel(t, a.And(b), want, []int{0, 63, 64, 127, 128, width - 1})
		if !a.And(b).Equal(b.And(a)) {
			t.Fatal("And not commutative")
		}
	}
}

func TestMaskImmutability(t *testing.T) {
	// Add/Remove on a multi-word mask must not mutate the receiver's
	// shared words.
	base := MaskOf(1, 70, 200)
	snapshot := base.CPUs()
	_ = base.Add(300)
	_ = base.Add(71)
	_ = base.Remove(70)
	_ = base.And(MaskOf(70))
	got := base.CPUs()
	if len(got) != len(snapshot) {
		t.Fatalf("base mutated: %v -> %v", snapshot, got)
	}
	for i := range got {
		if got[i] != snapshot[i] {
			t.Fatalf("base mutated: %v -> %v", snapshot, got)
		}
	}
}

func TestMaskCanonical(t *testing.T) {
	// Removing all high bits must restore representation equality with a
	// never-widened mask, and Empty must hold for a fully drained mask.
	m := MaskOf(3, 900).Remove(900)
	if !m.Equal(MaskOf(3)) {
		t.Fatalf("not canonical after Remove: %v", m)
	}
	if !MaskOf(900).Remove(900).Empty() {
		t.Fatal("drained mask not empty")
	}
	if !MaskAll(1024).And(CPUMask{}).Empty() {
		t.Fatal("And with empty not empty")
	}
	if !MaskAll(1024).And(MaskOf(5)).Equal(MaskOf(5)) {
		t.Fatal("And did not canonicalize")
	}
}

func TestMaskRange(t *testing.T) {
	cases := []struct{ lo, hi int }{
		{0, 0}, {0, 1}, {0, 64}, {0, 65}, {63, 65}, {64, 128},
		{100, 100}, {5, 3}, {130, 1024}, {0, 1024},
	}
	for _, c := range cases {
		m := MaskRange(c.lo, c.hi)
		mm := maskModel{}
		for i := c.lo; i < c.hi; i++ {
			mm[i] = true
		}
		checkAgainstModel(t, m, mm, []int{c.lo - 1, c.lo, c.hi - 1, c.hi})
	}
}

// parseMaskString inverts CPUMask.String for the round-trip check.
func parseMaskString(t *testing.T, s string) CPUMask {
	t.Helper()
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		t.Fatalf("bad mask string %q", s)
	}
	body := s[1 : len(s)-1]
	m := CPUMask{}
	if body == "" {
		return m
	}
	for _, f := range strings.Split(body, ",") {
		c, err := strconv.Atoi(f)
		if err != nil {
			t.Fatalf("bad mask string %q: %v", s, err)
		}
		m = m.Add(c)
	}
	return m
}

func TestMaskStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		m := CPUMask{}
		for i := 0; i < rng.Intn(40); i++ {
			m = m.Add(rng.Intn(1025))
		}
		if got := parseMaskString(t, m.String()); !got.Equal(m) {
			t.Fatalf("round trip %v -> %q -> %v", m, m.String(), got)
		}
	}
}

// FuzzMaskOps drives the bitset and the model with the same random
// operation tape and cross-checks every observer.
func FuzzMaskOps(f *testing.F) {
	f.Add([]byte{0, 63, 1, 64, 0, 65, 2, 64})
	f.Add([]byte{0, 255, 0, 254, 1, 255, 0, 0})
	f.Fuzz(func(t *testing.T, tape []byte) {
		m := CPUMask{}
		mm := maskModel{}
		for i := 0; i+1 < len(tape); i += 2 {
			// Two tape bytes give cpu in [0, 2048).
			c := int(tape[i+1]) | int(tape[i]&0x7)<<8
			switch tape[i] % 3 {
			case 0:
				m = m.Add(c)
				mm[c] = true
			case 1:
				m = m.Remove(c)
				delete(mm, c)
			case 2:
				if m.Has(c) != mm[c] {
					t.Fatalf("Has(%d) diverged", c)
				}
			}
		}
		checkAgainstModel(t, m, mm, []int{0, 63, 64, 127, 128, 1024, 2047})
		if got := parseMaskString(t, m.String()); !got.Equal(m) {
			t.Fatalf("string round trip failed for %v", m)
		}
	})
}
