package topo

import (
	"fmt"
	"math/bits"
	"strings"
)

// CPUMask is an immutable set of logical CPUs of any width. The zero value
// is the empty set.
//
// Bit i of word w covers cpu = w*64 + i. Word 0 lives inline in lo, so
// masks confined to CPUs 0..63 — every topology up to 64 CPUs — never
// allocate; wider masks spill words 1.. into hi. hi is kept canonical
// (no trailing zero words), so set equality is representation equality,
// and because masks are values whose operations copy-on-write, hi slices
// are shared freely and never mutated in place. Compare masks with Equal,
// not ==: the slice field makes CPUMask non-comparable.
type CPUMask struct {
	lo uint64
	hi []uint64
}

// trimmed returns hi with trailing zero words dropped (nil if all zero).
func trimmed(hi []uint64) []uint64 {
	n := len(hi)
	for n > 0 && hi[n-1] == 0 {
		n--
	}
	if n == 0 {
		return nil
	}
	return hi[:n]
}

// MaskAll returns a mask with CPUs 0..n-1 set, exact for any n.
func MaskAll(n int) CPUMask { return MaskRange(0, n) }

// MaskRange returns a mask with CPUs lo..hi-1 set (half-open interval).
func MaskRange(lo, hi int) CPUMask {
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		return CPUMask{}
	}
	last := (hi - 1) >> 6
	var m CPUMask
	if last > 0 {
		m.hi = make([]uint64, last)
	}
	for w := lo >> 6; w <= last; w++ {
		word := ^uint64(0)
		if w == lo>>6 {
			word &= ^uint64(0) << uint(lo&63)
		}
		if w == last && hi&63 != 0 {
			word &= 1<<uint(hi&63) - 1
		}
		if w == 0 {
			m.lo = word
		} else {
			m.hi[w-1] = word
		}
	}
	return m
}

// MaskOf returns a mask containing exactly the given CPUs.
func MaskOf(cpus ...int) CPUMask {
	var m CPUMask
	for _, c := range cpus {
		m = m.Add(c)
	}
	return m
}

// Has reports whether cpu is in the mask.
func (m CPUMask) Has(cpu int) bool {
	if cpu < 0 {
		return false
	}
	w := cpu >> 6
	if w == 0 {
		return m.lo&(1<<uint(cpu&63)) != 0
	}
	if w-1 >= len(m.hi) {
		return false
	}
	return m.hi[w-1]&(1<<uint(cpu&63)) != 0
}

// Add returns the mask with cpu added.
func (m CPUMask) Add(cpu int) CPUMask {
	if cpu < 0 {
		panic(fmt.Sprintf("topo: Add of negative cpu %d", cpu))
	}
	w, bit := cpu>>6, uint64(1)<<uint(cpu&63)
	if w == 0 {
		m.lo |= bit
		return m
	}
	if w-1 < len(m.hi) && m.hi[w-1]&bit != 0 {
		return m
	}
	hi := make([]uint64, max(len(m.hi), w))
	copy(hi, m.hi)
	hi[w-1] |= bit
	m.hi = hi
	return m
}

// Remove returns the mask with cpu removed.
func (m CPUMask) Remove(cpu int) CPUMask {
	if cpu < 0 {
		return m
	}
	w, bit := cpu>>6, uint64(1)<<uint(cpu&63)
	if w == 0 {
		m.lo &^= bit
		return m
	}
	if w-1 >= len(m.hi) || m.hi[w-1]&bit == 0 {
		return m
	}
	hi := make([]uint64, len(m.hi))
	copy(hi, m.hi)
	hi[w-1] &^= bit
	m.hi = trimmed(hi)
	return m
}

// And returns the intersection of the two masks.
func (m CPUMask) And(o CPUMask) CPUMask {
	out := CPUMask{lo: m.lo & o.lo}
	n := min(len(m.hi), len(o.hi))
	top := 0
	for i := n - 1; i >= 0; i-- {
		if m.hi[i]&o.hi[i] != 0 {
			top = i + 1
			break
		}
	}
	if top > 0 {
		out.hi = make([]uint64, top)
		for i := range out.hi {
			out.hi[i] = m.hi[i] & o.hi[i]
		}
	}
	return out
}

// Equal reports whether the two masks contain the same CPUs.
func (m CPUMask) Equal(o CPUMask) bool {
	if m.lo != o.lo || len(m.hi) != len(o.hi) {
		return false
	}
	for i, w := range m.hi {
		if w != o.hi[i] {
			return false
		}
	}
	return true
}

// Count reports the number of CPUs in the mask.
func (m CPUMask) Count() int {
	n := bits.OnesCount64(m.lo)
	for _, w := range m.hi {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the mask has no CPUs.
func (m CPUMask) Empty() bool { return m.lo == 0 && len(m.hi) == 0 }

// First returns the lowest-numbered CPU in the mask, or -1 if empty.
func (m CPUMask) First() int {
	if m.lo != 0 {
		return bits.TrailingZeros64(m.lo)
	}
	for i, w := range m.hi {
		if w != 0 {
			return (i+1)*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NumWords reports how many 64-bit words the mask spans (at least 1).
func (m CPUMask) NumWords() int { return len(m.hi) + 1 }

// Word returns the i-th 64-bit word of the mask (covering CPUs
// i*64..i*64+63). Indices beyond the mask's width yield 0.
func (m CPUMask) Word(i int) uint64 {
	if i == 0 {
		return m.lo
	}
	if i-1 < len(m.hi) {
		return m.hi[i-1]
	}
	return 0
}

// ForEach calls fn for every CPU in the mask, in ascending order.
func (m CPUMask) ForEach(fn func(cpu int)) {
	for v := m.lo; v != 0; v &= v - 1 {
		fn(bits.TrailingZeros64(v))
	}
	for i, w := range m.hi {
		base := (i + 1) * 64
		for v := w; v != 0; v &= v - 1 {
			fn(base + bits.TrailingZeros64(v))
		}
	}
}

// CPUs returns the members of the mask in ascending order.
func (m CPUMask) CPUs() []int {
	out := make([]int, 0, m.Count())
	m.ForEach(func(c int) { out = append(out, c) })
	return out
}

// String renders the mask as a compact CPU list, e.g. "{0,1,4}".
func (m CPUMask) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	m.ForEach(func(c int) {
		if !first {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
		first = false
	})
	b.WriteByte('}')
	return b.String()
}
