package topo

import (
	"fmt"
	"math/bits"
	"strings"
)

// CPUMask is a set of logical CPUs, limited to 64 — plenty for a node-level
// scheduler study (the paper's machine has 8 hardware threads).
type CPUMask uint64

// MaskAll returns a mask with CPUs 0..n-1 set.
func MaskAll(n int) CPUMask {
	if n >= 64 {
		return ^CPUMask(0)
	}
	return CPUMask(1)<<uint(n) - 1
}

// MaskOf returns a mask containing exactly the given CPUs.
func MaskOf(cpus ...int) CPUMask {
	var m CPUMask
	for _, c := range cpus {
		m |= 1 << uint(c)
	}
	return m
}

// Has reports whether cpu is in the mask.
func (m CPUMask) Has(cpu int) bool { return m&(1<<uint(cpu)) != 0 }

// Add returns the mask with cpu added.
func (m CPUMask) Add(cpu int) CPUMask { return m | 1<<uint(cpu) }

// Remove returns the mask with cpu removed.
func (m CPUMask) Remove(cpu int) CPUMask { return m &^ (1 << uint(cpu)) }

// And returns the intersection of the two masks.
func (m CPUMask) And(o CPUMask) CPUMask { return m & o }

// Count reports the number of CPUs in the mask.
func (m CPUMask) Count() int { return bits.OnesCount64(uint64(m)) }

// Empty reports whether the mask has no CPUs.
func (m CPUMask) Empty() bool { return m == 0 }

// First returns the lowest-numbered CPU in the mask, or -1 if empty.
func (m CPUMask) First() int {
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(m))
}

// ForEach calls fn for every CPU in the mask, in ascending order.
func (m CPUMask) ForEach(fn func(cpu int)) {
	for v := uint64(m); v != 0; {
		c := bits.TrailingZeros64(v)
		fn(c)
		v &^= 1 << uint(c)
	}
}

// CPUs returns the members of the mask in ascending order.
func (m CPUMask) CPUs() []int {
	out := make([]int, 0, m.Count())
	m.ForEach(func(c int) { out = append(out, c) })
	return out
}

// String renders the mask as a compact CPU list, e.g. "{0,1,4}".
func (m CPUMask) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	m.ForEach(func(c int) {
		if !first {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
		first = false
	})
	b.WriteByte('}')
	return b.String()
}
