package topo

import (
	"testing"
	"testing/quick"
)

func TestMaskBasics(t *testing.T) {
	m := MaskOf(0, 3, 5)
	if !m.Has(0) || !m.Has(3) || !m.Has(5) || m.Has(1) {
		t.Fatalf("membership wrong: %v", m)
	}
	if m.Count() != 3 {
		t.Fatalf("Count = %d", m.Count())
	}
	if m.First() != 0 {
		t.Fatalf("First = %d", m.First())
	}
	m = m.Remove(0)
	if m.First() != 3 {
		t.Fatalf("First after Remove = %d", m.First())
	}
	if got := m.Add(7).CPUs(); len(got) != 3 || got[2] != 7 {
		t.Fatalf("CPUs = %v", got)
	}
	if (CPUMask{}).First() != -1 {
		t.Fatal("empty First != -1")
	}
	if !(CPUMask{}).Empty() {
		t.Fatal("zero mask not empty")
	}
	if !MaskAll(8).Equal(MaskOf(0, 1, 2, 3, 4, 5, 6, 7)) {
		t.Fatalf("MaskAll(8) = %v", MaskAll(8))
	}
	if MaskAll(64).Count() != 64 || MaskAll(64).Has(64) {
		t.Fatal("MaskAll(64) wrong")
	}
	if MaskAll(65).Count() != 65 || !MaskAll(65).Has(64) {
		t.Fatal("MaskAll(65) wrong")
	}
}

func TestMaskAnd(t *testing.T) {
	a, b := MaskOf(1, 2, 3), MaskOf(2, 3, 4)
	if got := a.And(b); !got.Equal(MaskOf(2, 3)) {
		t.Fatalf("And = %v", got)
	}
}

func TestMaskString(t *testing.T) {
	if s := MaskOf(0, 2).String(); s != "{0,2}" {
		t.Fatalf("String = %q", s)
	}
	if s := (CPUMask{}).String(); s != "{}" {
		t.Fatalf("empty String = %q", s)
	}
}

func TestPOWER6Layout(t *testing.T) {
	p6 := POWER6()
	if err := p6.Validate(); err != nil {
		t.Fatal(err)
	}
	if p6.NumCPUs() != 8 || p6.NumCores() != 4 {
		t.Fatalf("POWER6 dims wrong: %v", p6)
	}
	// CPU numbering: chip0 = {0,1,2,3}, chip1 = {4,5,6,7};
	// core0 = {0,1}, core1 = {2,3}, ...
	cases := []struct{ cpu, chip, core, thread int }{
		{0, 0, 0, 0}, {1, 0, 0, 1}, {2, 0, 1, 0}, {3, 0, 1, 1},
		{4, 1, 2, 0}, {5, 1, 2, 1}, {6, 1, 3, 0}, {7, 1, 3, 1},
	}
	for _, c := range cases {
		if p6.ChipOf(c.cpu) != c.chip {
			t.Errorf("ChipOf(%d) = %d, want %d", c.cpu, p6.ChipOf(c.cpu), c.chip)
		}
		if p6.CoreOf(c.cpu) != c.core {
			t.Errorf("CoreOf(%d) = %d, want %d", c.cpu, p6.CoreOf(c.cpu), c.core)
		}
		if p6.ThreadOf(c.cpu) != c.thread {
			t.Errorf("ThreadOf(%d) = %d, want %d", c.cpu, p6.ThreadOf(c.cpu), c.thread)
		}
	}
}

func TestCPUOfRoundTrip(t *testing.T) {
	check := func(chips, cores, threads uint8) bool {
		tp := Topology{
			Chips:          int(chips%4) + 1,
			CoresPerChip:   int(cores%4) + 1,
			ThreadsPerCore: int(threads%4) + 1,
		}
		if tp.NumCPUs() > 64 {
			return true
		}
		for cpu := 0; cpu < tp.NumCPUs(); cpu++ {
			chip := tp.ChipOf(cpu)
			core := tp.CoreOf(cpu) % tp.CoresPerChip
			thr := tp.ThreadOf(cpu)
			if tp.CPUOf(chip, core, thr) != cpu {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSiblings(t *testing.T) {
	p6 := POWER6()
	if !p6.SiblingsOf(0).Equal(MaskOf(0, 1)) {
		t.Fatalf("SiblingsOf(0) = %v", p6.SiblingsOf(0))
	}
	if !p6.SiblingsOf(5).Equal(MaskOf(4, 5)) {
		t.Fatalf("SiblingsOf(5) = %v", p6.SiblingsOf(5))
	}
	if !p6.SharesCore(6, 7) || p6.SharesCore(1, 2) {
		t.Fatal("SharesCore wrong")
	}
	if !p6.SharesChip(0, 3) || p6.SharesChip(3, 4) {
		t.Fatal("SharesChip wrong")
	}
}

func TestChipAndCoreMasks(t *testing.T) {
	p6 := POWER6()
	if !p6.ChipMask(0).Equal(MaskOf(0, 1, 2, 3)) {
		t.Fatalf("ChipMask(0) = %v", p6.ChipMask(0))
	}
	if !p6.ChipMask(1).Equal(MaskOf(4, 5, 6, 7)) {
		t.Fatalf("ChipMask(1) = %v", p6.ChipMask(1))
	}
	if !p6.CoreMask(2).Equal(MaskOf(4, 5)) {
		t.Fatalf("CoreMask(2) = %v", p6.CoreMask(2))
	}
	if !p6.AllMask().Equal(MaskAll(8)) {
		t.Fatal("AllMask wrong")
	}
}

func TestDomainsPOWER6(t *testing.T) {
	p6 := POWER6()
	d := p6.Domains(0)
	if len(d) != 3 {
		t.Fatalf("domains = %v, want 3 levels", d)
	}
	if d[0].Level != SMTLevel || !d[0].Span.Equal(MaskOf(0, 1)) {
		t.Fatalf("SMT domain = %+v", d[0])
	}
	if d[1].Level != CoreLevel || !d[1].Span.Equal(MaskOf(0, 1, 2, 3)) {
		t.Fatalf("core domain = %+v", d[1])
	}
	if d[2].Level != SystemLevel || !d[2].Span.Equal(MaskAll(8)) {
		t.Fatalf("system domain = %+v", d[2])
	}
}

func TestDomainsDegenerate(t *testing.T) {
	// Single chip, no SMT: only one meaningful domain level remains.
	tp := Topology{Chips: 1, CoresPerChip: 4, ThreadsPerCore: 1}
	d := tp.Domains(0)
	if len(d) != 1 {
		t.Fatalf("domains = %+v, want 1 level", d)
	}
	if !d[0].Span.Equal(MaskAll(4)) {
		t.Fatalf("span = %v", d[0].Span)
	}

	// Uniprocessor: no domains at all.
	uni := Topology{Chips: 1, CoresPerChip: 1, ThreadsPerCore: 1}
	if len(uni.Domains(0)) != 0 {
		t.Fatal("uniprocessor should have no domains")
	}
}

func TestDomainsNested(t *testing.T) {
	// Property: domain spans are nested and all contain the owning CPU.
	p6 := POWER6()
	for cpu := 0; cpu < p6.NumCPUs(); cpu++ {
		prev := CPUMask{}
		for _, d := range p6.Domains(cpu) {
			if !d.Span.Has(cpu) {
				t.Fatalf("domain %v does not contain cpu %d", d, cpu)
			}
			if !prev.Empty() && !d.Span.And(prev).Equal(prev) {
				t.Fatalf("domain %v not a superset of inner %v", d.Span, prev)
			}
			prev = d.Span
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Topology{Chips: 0, CoresPerChip: 1, ThreadsPerCore: 1}).Validate(); err == nil {
		t.Fatal("zero chips validated")
	}
	// The 64-CPU cap is gone: wide nodes validate.
	if err := (Topology{Chips: 4, CoresPerChip: 128, ThreadsPerCore: 2}).Validate(); err != nil {
		t.Fatalf("1024-CPU topology rejected: %v", err)
	}
}

func TestParse(t *testing.T) {
	tp, err := Parse("4x128x2")
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumCPUs() != 1024 {
		t.Fatalf("Parse(4x128x2).NumCPUs = %d", tp.NumCPUs())
	}
	for _, bad := range []string{"", "4x128", "axbxc", "0x1x1", "-1x2x2"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestLevelString(t *testing.T) {
	if SMTLevel.String() != "SMT" || CoreLevel.String() != "CORE" || SystemLevel.String() != "SYSTEM" {
		t.Fatal("level strings wrong")
	}
}
