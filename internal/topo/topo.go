// Package topo models the processor topology of a compute node: chips
// (sockets), cores per chip, and SMT hardware threads per core, plus the
// scheduling-domain hierarchy the load balancer walks.
//
// The reference machine is the paper's IBM js22 blade: two POWER6 chips,
// two cores per chip, two SMT threads per core, eight logical CPUs, and no
// cache shared between cores (L1 and L2 are per core; the dual-socket blade
// has no L3).
package topo

import "fmt"

// DomainLevel identifies one level of the scheduling-domain hierarchy,
// from the innermost (SMT siblings) to the outermost (whole system).
type DomainLevel int

const (
	// SMTLevel groups the hardware threads of one core. Migrations inside
	// this domain keep cache contents (threads share L1/L2).
	SMTLevel DomainLevel = iota
	// CoreLevel groups the cores of one chip. Migrations here lose
	// per-core cache warmth on POWER6 (no shared chip cache).
	CoreLevel
	// SystemLevel groups all chips of the node.
	SystemLevel
)

func (l DomainLevel) String() string {
	switch l {
	case SMTLevel:
		return "SMT"
	case CoreLevel:
		return "CORE"
	case SystemLevel:
		return "SYSTEM"
	default:
		return fmt.Sprintf("DomainLevel(%d)", int(l))
	}
}

// Domain is one scheduling domain: a span of CPUs at a given level. Each CPU
// has a chain of domains, innermost first, exactly like the kernel's
// per-CPU sched_domain lists.
type Domain struct {
	Level DomainLevel
	Span  CPUMask
}

// Topology describes a node: Chips sockets, each with CoresPerChip cores,
// each with ThreadsPerCore SMT hardware threads. Logical CPU numbering is
// thread-major within core, core-major within chip:
//
//	cpu = chip*CoresPerChip*ThreadsPerCore + core*ThreadsPerCore + thread
type Topology struct {
	Chips          int
	CoresPerChip   int
	ThreadsPerCore int
}

// POWER6 is the paper's evaluation machine: a dual-socket IBM js22 blade
// (2 chips x 2 cores x 2 SMT threads = 8 logical CPUs).
func POWER6() Topology {
	return Topology{Chips: 2, CoresPerChip: 2, ThreadsPerCore: 2}
}

// NumCPUs reports the number of logical CPUs.
func (t Topology) NumCPUs() int { return t.Chips * t.CoresPerChip * t.ThreadsPerCore }

// NumCores reports the number of physical cores.
func (t Topology) NumCores() int { return t.Chips * t.CoresPerChip }

// Validate reports an error if any dimension is non-positive. There is no
// upper bound: CPUMask is variable-width, so topologies of any size are
// representable.
func (t Topology) Validate() error {
	if t.Chips <= 0 || t.CoresPerChip <= 0 || t.ThreadsPerCore <= 0 {
		return fmt.Errorf("topo: non-positive dimension in %+v", t)
	}
	return nil
}

// Parse parses a "CxKxT" topology spec (chips x cores-per-chip x
// threads-per-core), e.g. "4x128x2", and validates it.
func Parse(spec string) (Topology, error) {
	var t Topology
	if _, err := fmt.Sscanf(spec, "%dx%dx%d", &t.Chips, &t.CoresPerChip, &t.ThreadsPerCore); err != nil {
		return Topology{}, fmt.Errorf("topo: bad spec %q (want CxKxT, e.g. 2x2x2): %v", spec, err)
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// ChipOf reports the chip (socket) index of a logical CPU.
func (t Topology) ChipOf(cpu int) int {
	return cpu / (t.CoresPerChip * t.ThreadsPerCore)
}

// CoreOf reports the global core index of a logical CPU.
func (t Topology) CoreOf(cpu int) int { return cpu / t.ThreadsPerCore }

// ThreadOf reports the SMT thread index of a logical CPU within its core.
func (t Topology) ThreadOf(cpu int) int { return cpu % t.ThreadsPerCore }

// CPUOf reports the logical CPU for (chip, core-within-chip, thread).
func (t Topology) CPUOf(chip, core, thread int) int {
	return chip*t.CoresPerChip*t.ThreadsPerCore + core*t.ThreadsPerCore + thread
}

// SiblingsOf returns the mask of SMT siblings of cpu (including cpu).
func (t Topology) SiblingsOf(cpu int) CPUMask {
	base := t.CoreOf(cpu) * t.ThreadsPerCore
	return MaskRange(base, base+t.ThreadsPerCore)
}

// ChipMask returns the mask of all CPUs on the given chip.
func (t Topology) ChipMask(chip int) CPUMask {
	per := t.CoresPerChip * t.ThreadsPerCore
	return MaskRange(chip*per, (chip+1)*per)
}

// CoreMask returns the mask of all CPUs on the given global core.
func (t Topology) CoreMask(core int) CPUMask {
	return MaskRange(core*t.ThreadsPerCore, (core+1)*t.ThreadsPerCore)
}

// AllMask returns the mask of every CPU in the node.
func (t Topology) AllMask() CPUMask { return MaskAll(t.NumCPUs()) }

// SharesCore reports whether two CPUs are SMT siblings (same physical
// core). Cache warmth survives migrations between such CPUs.
func (t Topology) SharesCore(a, b int) bool { return t.CoreOf(a) == t.CoreOf(b) }

// SharesChip reports whether two CPUs sit on the same chip.
func (t Topology) SharesChip(a, b int) bool { return t.ChipOf(a) == t.ChipOf(b) }

// Domains returns the scheduling-domain chain for cpu, innermost first.
// Degenerate levels (span of one CPU, or identical to the level below) are
// skipped, as the kernel does when building domains.
func (t Topology) Domains(cpu int) []Domain {
	var out []Domain
	add := func(level DomainLevel, span CPUMask) {
		if span.Count() <= 1 {
			return
		}
		if len(out) > 0 && out[len(out)-1].Span.Equal(span) {
			return
		}
		out = append(out, Domain{Level: level, Span: span})
	}
	add(SMTLevel, t.SiblingsOf(cpu))
	add(CoreLevel, t.ChipMask(t.ChipOf(cpu)))
	add(SystemLevel, t.AllMask())
	return out
}

// String describes the topology, e.g. "2 chips x 2 cores x 2 threads (8 CPUs)".
func (t Topology) String() string {
	return fmt.Sprintf("%d chips x %d cores x %d threads (%d CPUs)",
		t.Chips, t.CoresPerChip, t.ThreadsPerCore, t.NumCPUs())
}
