package pool

import "sync"

// Gang is a fixed crew of persistent workers for phase-parallel work inside
// one simulation: the conservative shard replay (internal/shard) opens a
// synchronization window, fans the window's work out over the gang, and
// joins before the simulation advances. Unlike ForN, which spreads
// independent replications over an elastic pool, a Gang gives each worker a
// stable identity (worker w always processes shard w), so the partition of
// work onto workers — and therefore the result — is a pure function of the
// configuration, never of host scheduling.
//
// Worker 0 is the calling goroutine; workers 1..n-1 are parked goroutines
// that live until Close. A Gang is not safe for concurrent Do calls — it
// belongs to one simulation loop, which is single-threaded between phases.
type Gang struct {
	workers int
	start   []chan func()
	wg      sync.WaitGroup
	// panics[w] records worker w's panic value for this Do, if any. The
	// slice is reset at the start of each Do and re-raised lowest worker
	// first, so a multi-worker failure surfaces deterministically.
	panics []any
}

// NewGang returns a gang of n workers (minimum 1). The n-1 helper
// goroutines start parked and cost nothing until Do.
func NewGang(n int) *Gang {
	if n < 1 {
		n = 1
	}
	g := &Gang{
		workers: n,
		start:   make([]chan func(), n-1),
		panics:  make([]any, n),
	}
	for i := range g.start {
		ch := make(chan func())
		g.start[i] = ch
		go func() {
			for job := range ch {
				job()
			}
		}()
	}
	return g
}

// Workers reports the gang size, including the caller.
func (g *Gang) Workers() int { return g.workers }

// Do runs fn(w) once for every worker w in [0, Workers) and returns when
// all invocations have completed — a full barrier. The caller runs worker 0
// inline. If any invocation panics, Do drains the barrier first and then
// re-panics with the lowest-numbered worker's panic value, so the failure
// the caller sees does not depend on host goroutine interleaving.
func (g *Gang) Do(fn func(worker int)) {
	for i := range g.panics {
		g.panics[i] = nil
	}
	g.wg.Add(g.workers - 1)
	for w := 1; w < g.workers; w++ {
		w := w
		g.start[w-1] <- func() {
			defer g.wg.Done()
			defer func() {
				if r := recover(); r != nil {
					g.panics[w] = r
				}
			}()
			fn(w)
		}
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				g.panics[0] = r
			}
		}()
		fn(0)
	}()
	g.wg.Wait()
	for _, p := range g.panics {
		if p != nil {
			panic(p)
		}
	}
}

// Close releases the helper goroutines. The gang must be idle; Do after
// Close panics (send on closed channel).
func (g *Gang) Close() {
	for _, ch := range g.start {
		close(ch)
	}
}
