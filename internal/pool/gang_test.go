package pool

import (
	"sync/atomic"
	"testing"
)

// TestGangBarrier: Do must run fn exactly once per worker with stable
// identities and not return until every invocation has finished.
func TestGangBarrier(t *testing.T) {
	g := NewGang(4)
	defer g.Close()
	if g.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", g.Workers())
	}
	for round := 0; round < 3; round++ { // the gang is reusable across phases
		var hits [4]atomic.Int64
		g.Do(func(w int) { hits[w].Add(1) })
		for w := range hits {
			if n := hits[w].Load(); n != 1 {
				t.Fatalf("round %d: worker %d ran %d times, want 1", round, w, n)
			}
		}
	}
}

// TestGangOfOne: a single-worker gang is the degenerate sequential case —
// no helper goroutines, fn runs inline on the caller.
func TestGangOfOne(t *testing.T) {
	g := NewGang(1)
	defer g.Close()
	ran := false
	g.Do(func(w int) {
		if w != 0 {
			t.Errorf("worker id %d, want 0", w)
		}
		ran = true
	})
	if !ran {
		t.Fatal("fn never ran")
	}
}

// TestGangClampsToOne: NewGang(0) and negative sizes clamp rather than
// deadlock or panic.
func TestGangClampsToOne(t *testing.T) {
	g := NewGang(0)
	defer g.Close()
	if g.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", g.Workers())
	}
	g.Do(func(int) {})
}

// TestGangPanicPropagation: a worker panic re-raises on the caller after the
// barrier, and when several workers panic the lowest-numbered worker's value
// wins — the failure is deterministic, not a goroutine race.
func TestGangPanicPropagation(t *testing.T) {
	g := NewGang(4)
	defer g.Close()
	got := func() (r any) {
		defer func() { r = recover() }()
		g.Do(func(w int) {
			if w == 1 || w == 3 {
				panic(w)
			}
		})
		return nil
	}()
	if got != 1 {
		t.Fatalf("recovered %v, want worker 1's panic value", got)
	}
	// The gang must still be usable after a panicking phase.
	var n atomic.Int64
	g.Do(func(int) { n.Add(1) })
	if n.Load() != 4 {
		t.Fatalf("post-panic Do ran %d workers, want 4", n.Load())
	}
}
