package pool

import (
	"sync/atomic"
	"testing"
)

func TestForNCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 8, 100} {
		const n = 1000
		counts := make([]int32, n)
		ForN(n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForNZeroAndNegativeN(t *testing.T) {
	called := false
	ForN(0, 4, func(int) { called = true })
	ForN(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for non-positive n")
	}
}

func TestForNIndexedWritesMatchSequential(t *testing.T) {
	const n = 500
	want := make([]int, n)
	ForN(n, 1, func(i int) { want[i] = i * i })
	got := make([]int, n)
	ForN(n, 7, func(i int) { got[i] = i * i })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestForNPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	ForN(100, 4, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}
