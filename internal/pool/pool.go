// Package pool provides the bounded worker pool used to fan independent
// simulation replications out over the host's cores.
//
// The determinism contract of the replication harness (see
// internal/experiments.RunManyOpt and DESIGN.md) rests on the shape of
// ForN: every index is processed exactly once, the caller writes results
// into a slot chosen by index, and no state is shared between invocations —
// so the assembled output is bitwise identical to a sequential loop
// regardless of the worker count or the interleaving the host scheduler
// happens to produce.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForN invokes fn(i) for every i in [0, n), spreading invocations over a
// bounded pool of goroutines. workers <= 0 selects GOMAXPROCS; workers == 1
// (or n < 2) runs inline on the caller's goroutine with no synchronisation
// overhead. ForN returns when every invocation has completed.
//
// fn must be safe to call from multiple goroutines on distinct indices; a
// panic in any invocation propagates to the caller after the pool drains.
func ForN(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	// Work-stealing by atomic counter: indices are handed out in order,
	// so early indices start first and the pool self-balances when run
	// times differ (long-horizon reps do not stall a whole stripe).
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
