// Package cluster extends the single-node reproduction to the multi-node
// noise-resonance study of Section II: "when scaling to thousands of
// nodes, the probability that in each computing phase at least one node is
// slowed by some long kernel activity approaches 1.0".
//
// The study is a hybrid simulation, the standard technique of the noise
// literature (Tsafrir et al.; Ferreira et al.): the *node* behaviour is
// measured empirically by running the full single-node kernel simulation
// and recording per-iteration times at the barrier; the *cluster* is then
// composed by drawing each node's iteration time independently from that
// empirical distribution and taking the maximum per global iteration —
// which is exactly what a cluster-wide barrier computes. This preserves
// the single-node noise model bit-for-bit while scaling to thousands of
// nodes.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"hplsim/internal/pool"
	"hplsim/internal/sim"
	"hplsim/internal/stats"
)

// NodeSample is the empirical per-iteration time distribution of one node
// configuration, gathered from full single-node simulations.
type NodeSample struct {
	// IterationSec are observed per-iteration wall times (seconds).
	IterationSec []float64
	// Ideal is the noise-free iteration time (seconds), used to report
	// slowdown factors.
	Ideal float64
}

// Valid reports whether the sample can drive a resonance study.
func (ns NodeSample) Valid() bool {
	return len(ns.IterationSec) > 0 && ns.Ideal > 0
}

// Point is the outcome of the resonance study at one cluster size.
type Point struct {
	Nodes int
	// MeanSlowdown is the expected job slowdown versus the noise-free
	// time (1.0 = no slowdown).
	MeanSlowdown float64
	// P99Slowdown is the 99th percentile job slowdown.
	P99Slowdown float64
	// ProbIterDelayed is the probability that a single global iteration
	// is delayed beyond 1% of the ideal iteration time.
	ProbIterDelayed float64
}

// Resonance composes clusters of the given sizes from the node sample.
// Each of `draws` simulated jobs executes `iters` global iterations; each
// node's per-iteration time is an independent draw from the empirical
// distribution, and the global iteration takes the maximum across nodes.
// It is ResonanceOpt with a sequential (but identically seeded) pool.
func Resonance(ns NodeSample, nodes []int, iters, draws int, rng *sim.RNG) []Point {
	return ResonanceOpt(ns, nodes, iters, draws, rng, 1)
}

// ResonanceOpt is Resonance with the Monte-Carlo draws fanned out over a
// bounded worker pool (workers <= 0 selects GOMAXPROCS). Every simulated
// job uses a random stream derived purely from (rng seed, node-size index,
// draw index), and results land in index-addressed slots, so the output is
// identical for every worker count.
func ResonanceOpt(ns NodeSample, nodes []int, iters, draws int, rng *sim.RNG, workers int) []Point {
	if !ns.Valid() {
		panic("cluster: empty node sample")
	}
	if iters <= 0 || draws <= 0 {
		panic("cluster: non-positive iters or draws")
	}
	// Sort a copy so we can draw via inverse CDF with interpolation-free
	// indexing (empirical bootstrap).
	emp := append([]float64(nil), ns.IterationSec...)
	sort.Float64s(emp)

	out := make([]Point, 0, len(nodes))
	for ni, n := range nodes {
		n := n
		sizeRNG := rng.Split(uint64(ni))
		slowdowns := make([]float64, draws)
		delayedByDraw := make([]int, draws)
		pool.ForN(draws, workers, func(d int) {
			r := sizeRNG.Split(uint64(d))
			var total float64
			delayed := 0
			for it := 0; it < iters; it++ {
				// max over n independent node draws; equivalently one
				// draw from the max-order statistic. Sampling the max
				// directly via the CDF trick keeps cost O(1) per
				// iteration: P(max <= x) = F(x)^n, so draw u and look
				// up the u^(1/n) quantile.
				u := r.Float64()
				q := rootN(u, n)
				idx := int(q * float64(len(emp)))
				if idx >= len(emp) {
					idx = len(emp) - 1
				}
				t := emp[idx]
				total += t
				if t > ns.Ideal*1.01 {
					delayed++
				}
			}
			slowdowns[d] = total / (float64(iters) * ns.Ideal)
			delayedByDraw[d] = delayed
		})
		delayed := 0
		for _, c := range delayedByDraw {
			delayed += c
		}
		sum := stats.Summarize(slowdowns)
		out = append(out, Point{
			Nodes:           n,
			MeanSlowdown:    sum.Mean,
			P99Slowdown:     sum.P99,
			ProbIterDelayed: float64(delayed) / float64(draws*iters),
		})
	}
	return out
}

// rootN computes u^(1/n) without importing math for a hot loop — Newton on
// x^n = u converges in a few steps for u in (0,1).
func rootN(u float64, n int) float64 {
	if n == 1 || u <= 0 {
		return u
	}
	// Initial guess via exp(ln(u)/n) ~ 1 + ln(u)/n for u near 1; use a
	// simple bisection for robustness (the loop is cheap and exact
	// enough for index lookup).
	lo, hi := 0.0, 1.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if powInt(mid, n) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// powInt computes x^n by binary exponentiation.
func powInt(x float64, n int) float64 {
	r := 1.0
	for n > 0 {
		if n&1 == 1 {
			r *= x
		}
		x *= x
		n >>= 1
	}
	return r
}

// Format renders resonance points as the text analogue of a scaling figure.
func Format(points []Point) string {
	var b strings.Builder
	b.WriteString("Noise resonance: job slowdown vs cluster size\n")
	b.WriteString("(per-node iteration times drawn from the measured single-node distribution;\n")
	b.WriteString(" a global barrier takes the per-iteration maximum across nodes)\n\n")
	fmt.Fprintf(&b, "%8s %14s %14s %18s\n",
		"nodes", "mean slowdown", "p99 slowdown", "P(iter delayed)")
	for _, p := range points {
		bar := strings.Repeat("#", int((p.MeanSlowdown-1)*200))
		if len(bar) > 40 {
			bar = bar[:40]
		}
		fmt.Fprintf(&b, "%8d %14.4f %14.4f %18.4f  %s\n",
			p.Nodes, p.MeanSlowdown, p.P99Slowdown, p.ProbIterDelayed, bar)
	}
	return b.String()
}
