package cluster

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"hplsim/internal/sim"
)

// noisySample builds a node distribution: mostly ideal iterations with a
// fraction `p` delayed by `factor`x.
func noisySample(ideal float64, p, factor float64, n int, seed uint64) NodeSample {
	rng := sim.NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		if rng.Float64() < p {
			xs[i] = ideal * factor
		} else {
			xs[i] = ideal
		}
	}
	return NodeSample{IterationSec: xs, Ideal: ideal}
}

func TestResonanceAmplifiesWithScale(t *testing.T) {
	// 2% of iterations delayed 2x on one node: on one node the expected
	// slowdown is ~2%; at 1024 nodes nearly every global iteration hits
	// a delayed node, approaching the full 2x.
	ns := noisySample(0.1, 0.02, 2.0, 20000, 1)
	pts := Resonance(ns, []int{1, 16, 256, 4096}, 100, 300, sim.NewRNG(2))
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].MeanSlowdown < pts[i-1].MeanSlowdown-0.01 {
			t.Fatalf("slowdown not monotone: %+v", pts)
		}
	}
	if pts[0].MeanSlowdown > 1.05 {
		t.Fatalf("single node slowdown = %.3f, want ~1.02", pts[0].MeanSlowdown)
	}
	if pts[3].MeanSlowdown < 1.8 {
		t.Fatalf("4096-node slowdown = %.3f, want ~2 (noise resonance)", pts[3].MeanSlowdown)
	}
	if pts[3].ProbIterDelayed < 0.99 {
		t.Fatalf("P(iter delayed) at scale = %.3f, want ~1 (Section II)", pts[3].ProbIterDelayed)
	}
}

func TestQuietNodeStaysFlat(t *testing.T) {
	ns := noisySample(0.1, 0, 1, 1000, 3)
	pts := Resonance(ns, []int{1, 1024}, 50, 100, sim.NewRNG(4))
	for _, p := range pts {
		if math.Abs(p.MeanSlowdown-1) > 0.01 {
			t.Fatalf("quiet node slowdown at %d nodes = %.4f", p.Nodes, p.MeanSlowdown)
		}
	}
}

func TestResonanceWorkerCountInvariance(t *testing.T) {
	// The Monte-Carlo composition must give identical points for every
	// worker count: each draw's stream derives from (seed, size, draw).
	ns := noisySample(0.1, 0.03, 2.5, 5000, 7)
	nodes := []int{1, 32, 512}
	seq := ResonanceOpt(ns, nodes, 40, 120, sim.NewRNG(8), 1)
	for _, workers := range []int{2, 8} {
		par := ResonanceOpt(ns, nodes, 40, 120, sim.NewRNG(8), workers)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: points differ from sequential:\nseq: %+v\npar: %+v",
				workers, seq, par)
		}
	}
	// And the legacy entry point is the workers=1 case.
	if !reflect.DeepEqual(seq, Resonance(ns, nodes, 40, 120, sim.NewRNG(8))) {
		t.Fatal("Resonance does not match ResonanceOpt(..., 1)")
	}
}

func TestValidation(t *testing.T) {
	if (NodeSample{}).Valid() {
		t.Fatal("empty sample valid")
	}
	ns := NodeSample{IterationSec: []float64{1}, Ideal: 1}
	if !ns.Valid() {
		t.Fatal("valid sample rejected")
	}
	assertPanics(t, func() { Resonance(NodeSample{}, []int{1}, 1, 1, sim.NewRNG(0)) })
	assertPanics(t, func() { Resonance(ns, []int{1}, 0, 1, sim.NewRNG(0)) })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestRootN(t *testing.T) {
	check := func(u16 uint16, n8 uint8) bool {
		u := float64(u16) / 65536
		n := int(n8%64) + 1
		r := rootN(u, n)
		if r < 0 || r > 1 {
			return false
		}
		return math.Abs(powInt(r, n)-u) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPowInt(t *testing.T) {
	if powInt(2, 10) != 1024 {
		t.Fatalf("powInt(2,10) = %v", powInt(2, 10))
	}
	if powInt(0.5, 2) != 0.25 {
		t.Fatalf("powInt(0.5,2) = %v", powInt(0.5, 2))
	}
	if powInt(3, 0) != 1 {
		t.Fatal("powInt(x,0) != 1")
	}
}

func TestFormat(t *testing.T) {
	ns := noisySample(0.1, 0.05, 3, 5000, 5)
	pts := Resonance(ns, []int{1, 64}, 50, 100, sim.NewRNG(6))
	out := Format(pts)
	if !strings.Contains(out, "nodes") || !strings.Contains(out, "64") {
		t.Fatalf("format missing fields:\n%s", out)
	}
}
