// Package simqd is the service edge of the simulation queue: the HTTP
// dispatcher (simqd), the synchronous worker loop, and the client the psq
// CLI wraps. All queue truth lives in internal/simq as a journaled,
// replayable state machine; this package only decides transitions, stamps
// them with a clock, journals them write-ahead, and moves artifact bytes.
//
// Concurrency posture: the repository bans unmanaged goroutines and
// channels (schedlint's conc rule), so this package spawns none. The
// dispatcher's handlers run on net/http's service goroutines serialized by
// one mutex; the worker and client are fully synchronous. Lease expiry is
// swept opportunistically when claims arrive instead of by a timer
// goroutine — a dispatcher at rest does nothing, and every transition
// still happens under a journaled stamp.
package simqd

import (
	"sync/atomic"

	"hplsim/internal/walltime"
)

// Clock supplies the dispatcher's journal stamps, in nanoseconds on an
// arbitrary monotonic scale. The dispatcher clamps stamps to be
// non-decreasing across restarts (records demand it), so the scale's
// origin only has to be consistent within one journal.
type Clock interface {
	Now() int64
}

// HostClock stamps records with real elapsed time, resuming from the last
// journaled stamp: restarting the dispatcher never moves its clock
// backwards. The wall clock is read through internal/walltime — the one
// sanctioned edge — and only ever feeds journal stamps, never simulation
// state.
type HostClock struct {
	base int64
	sw   walltime.Stopwatch
}

// NewHostClock starts a host clock at the given base stamp.
func NewHostClock(base int64) *HostClock {
	return &HostClock{base: base, sw: walltime.Start()}
}

// Now reports base + elapsed host time.
func (c *HostClock) Now() int64 {
	return c.base + int64(c.sw.Elapsed())
}

// FakeClock is a hand-advanced clock for tests and deterministic
// harnesses: stamps move only when the test says so, making journals
// byte-reproducible across runs. Reads and writes are atomic so a test
// goroutine can advance it between requests served on HTTP goroutines.
type FakeClock struct {
	t atomic.Int64
}

// Now reports the current fake time.
func (c *FakeClock) Now() int64 { return c.t.Load() }

// Set moves the fake clock to v.
func (c *FakeClock) Set(v int64) { c.t.Store(v) }

// Advance moves the fake clock forward by d nanoseconds.
func (c *FakeClock) Advance(d int64) { c.t.Add(d) }
