package simqd

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"hplsim/internal/experiments"
	"hplsim/internal/nas"
	"hplsim/internal/sim"
	"hplsim/internal/simq"
)

// testPayload is the sub-second workload every service test runs.
func testPayload(seed uint64) string {
	p := experiments.Payload{
		Custom: &nas.CustomSpec{
			Bench: "svc", Class: "T", Ranks: 4, Iterations: 4,
			TargetSeconds: 0.05, Sensitivity: 0.3,
		},
		Scheme:      "hpl",
		Seed:        seed,
		Topo:        "2x2x2",
		FastForward: true,
		NoStorms:    true,
	}
	return p.Canonical()
}

// harness is one dispatcher under httptest with a hand-advanced clock.
type harness struct {
	t      *testing.T
	dir    string
	srv    *Server
	hs     *httptest.Server
	client *Client
	clock  *FakeClock
}

func newHarness(t *testing.T, cfg simq.Config) *harness {
	t.Helper()
	dir := t.TempDir()
	clock := &FakeClock{}
	clock.Set(int64(sim.Second))
	srv, err := Open(dir, cfg, clock)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return &harness{t: t, dir: dir, srv: srv, hs: hs,
		client: NewClient(hs.URL), clock: clock}
}

func (h *harness) submit(client, name, payload string) int {
	h.t.Helper()
	job, err := h.client.Submit(client, name, 0, payload)
	if err != nil {
		h.t.Fatalf("submit %s: %v", name, err)
	}
	return job
}

func (h *harness) result(job int) []byte {
	h.t.Helper()
	b, err := h.client.Result(job)
	if err != nil {
		h.t.Fatalf("result of job %d: %v", job, err)
	}
	return b
}

func (h *harness) mustRun(w *Worker) {
	h.t.Helper()
	claimed, err := w.RunOne()
	if err != nil {
		h.t.Fatalf("worker %s: %v", w.Name, err)
	}
	if !claimed {
		h.t.Fatalf("worker %s found nothing to claim", w.Name)
	}
}

// TestEndToEndRetryDeterminism is the tentpole's acceptance test: the same
// payload submitted three times — once run cleanly, once through a worker
// that crashes mid-lease forcing an expiry retry, once through a worker
// whose result is dropped and whose retry double-delivers — produces three
// byte-identical artifacts.
func TestEndToEndRetryDeterminism(t *testing.T) {
	h := newHarness(t, simq.Config{LeaseFor: 10 * sim.Second})
	payload := testPayload(7)

	healthy := &Worker{Client: h.client, Name: "w-ok"}
	crashy := &Worker{Client: h.client, Name: "w-crash", Chaos: simq.Chaos{Seed: 1, WorkerCrash: 1}}
	droppy := &Worker{Client: h.client, Name: "w-drop", Chaos: simq.Chaos{Seed: 2, DropResult: 1}}
	dupey := &Worker{Client: h.client, Name: "w-dup", Chaos: simq.Chaos{Seed: 3, DuplicateDelivery: 1}}

	// Job A: the clean run.
	a := h.submit("alice", "clean", payload)
	h.mustRun(healthy)

	// Job B: claimed by a worker that dies without a word. The lease must
	// expire before anyone else can run it.
	b := h.submit("alice", "crashed-once", payload)
	h.mustRun(crashy)
	if v, _ := h.client.Status(b); v.State != "leased" {
		t.Fatalf("job %d after crashy claim: %s, want leased", b, v.State)
	}
	// Past the deadline, the next claim sweeps the expiry — but the
	// requeued job is still cooling under its retry backoff, so the same
	// request finds nothing runnable yet.
	h.clock.Advance(int64(11 * sim.Second))
	if claimed, err := healthy.RunOne(); err != nil || claimed {
		t.Fatalf("claim during retry backoff: claimed=%v err=%v", claimed, err)
	}
	h.clock.Advance(int64(2 * sim.Second))
	h.mustRun(healthy) // claims attempt 2, completes

	// Job C: the run happens but the report is lost; the retry completes
	// and then delivers its result twice.
	c := h.submit("bob", "dropped-once", payload)
	h.mustRun(droppy)
	h.clock.Advance(int64(11 * sim.Second))
	if claimed, err := dupey.RunOne(); err != nil || claimed {
		t.Fatalf("claim during retry backoff: claimed=%v err=%v", claimed, err)
	}
	h.clock.Advance(int64(2 * sim.Second))
	h.mustRun(dupey)

	// All three artifacts must be byte-identical.
	ab, bb, cb := h.result(a), h.result(b), h.result(c)
	if !bytes.Equal(ab, bb) {
		t.Error("clean artifact differs from crashed-retry artifact")
	}
	if !bytes.Equal(ab, cb) {
		t.Error("clean artifact differs from dropped-retry artifact")
	}

	// The retries really happened: jobs B and C are on attempt 2.
	for _, job := range []int{b, c} {
		v, err := h.client.Status(job)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != "done" || v.Attempt != 2 {
			t.Errorf("job %d = %s attempt %d, want done attempt 2", job, v.State, v.Attempt)
		}
	}
	// And the duplicate delivery was absorbed as an idempotent no-op.
	st, err := h.client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplicates != 1 || st.FPMismatches != 0 || st.StaleReports != 0 {
		t.Errorf("stats = %+v, want exactly one absorbed duplicate", st)
	}
	if st.Done != 3 || st.Failed != 0 {
		t.Errorf("stats = %+v, want 3 done", st)
	}
}

// TestSubmitTwiceSameArtifact: the plain determinism statement at the
// service boundary, no chaos involved.
func TestSubmitTwiceSameArtifact(t *testing.T) {
	h := newHarness(t, simq.Config{})
	w := &Worker{Client: h.client, Name: "w"}
	a := h.submit("alice", "first", testPayload(42))
	b := h.submit("alice", "second", testPayload(42))
	h.mustRun(w)
	h.mustRun(w)
	if !bytes.Equal(h.result(a), h.result(b)) {
		t.Fatal("same payload produced different artifacts")
	}
	// A different seed is a different artifact.
	c := h.submit("alice", "other-seed", testPayload(43))
	h.mustRun(w)
	if bytes.Equal(h.result(a), h.result(c)) {
		t.Fatal("different seeds produced identical artifacts")
	}
}

// TestWorkerFailurePathRetries: a payload the runner cannot execute burns
// through MaxAttempts fail records and ends terminally failed, with the
// worker's message preserved.
func TestWorkerFailurePathRetries(t *testing.T) {
	h := newHarness(t, simq.Config{MaxAttempts: 2, BackoffBase: sim.Second})
	job := h.submit("alice", "doomed", `{"scheme":"warp","bench":"ft","class":"A"}`)
	w := &Worker{Client: h.client, Name: "w"}
	h.mustRun(w)
	if v, _ := h.client.Status(job); v.State != "pending" || v.Attempt != 1 {
		t.Fatalf("after first failure: %s attempt %d, want pending 1", v.State, v.Attempt)
	}
	// Cooling: nothing claimable until the backoff passes.
	if claimed, err := w.RunOne(); err != nil || claimed {
		t.Fatalf("claim during backoff: claimed=%v err=%v", claimed, err)
	}
	h.clock.Advance(int64(2 * sim.Second))
	h.mustRun(w)
	v, err := h.client.Status(job)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != "failed" || v.Attempt != 2 {
		t.Fatalf("final state = %s attempt %d, want failed 2", v.State, v.Attempt)
	}
	if v.Err == "" {
		t.Fatal("terminal failure lost the worker's error message")
	}
	// The result endpoint reports the failure, not a hang.
	if _, err := h.client.Result(job); !IsStatus(err, 410) {
		t.Fatalf("result of failed job: %v, want 410", err)
	}
}
