package simqd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"hplsim/internal/sim"
	"hplsim/internal/simq"
)

// TestQuotaBackpressure: each client has a fixed in-flight budget; the
// submit that exceeds it is rejected with 429, deterministically — the
// same submission sequence always rejects the same requests.
func TestQuotaBackpressure(t *testing.T) {
	h := newHarness(t, simq.Config{QuotaPerClient: 2})
	if _, err := h.client.Submit("alice", "a1", 0, `{"p":1}`); err != nil {
		t.Fatal(err)
	}
	if _, err := h.client.Submit("alice", "a2", 0, `{"p":2}`); err != nil {
		t.Fatal(err)
	}
	// Third in-flight job for alice: over quota.
	if _, err := h.client.Submit("alice", "a3", 0, `{"p":3}`); !IsStatus(err, 429) {
		t.Fatalf("over-quota submit: %v, want 429", err)
	}
	// The quota is per client, not global: bob is unaffected.
	if _, err := h.client.Submit("bob", "b1", 0, `{"p":4}`); err != nil {
		t.Fatalf("other client's submit hit alice's quota: %v", err)
	}
	// A leased job still counts against the quota...
	if _, ok, err := h.client.Claim("w"); err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	if _, err := h.client.Submit("alice", "a3", 0, `{"p":3}`); !IsStatus(err, 429) {
		t.Fatalf("submit with a job merely leased: %v, want 429", err)
	}
	// ...and only completion frees a slot.
	w := &Worker{Client: h.client, Name: "w2",
		Runner: func(p string) ([]byte, error) { return []byte("x"), nil }}
	if _, err := w.DrainQueue(); err != nil {
		t.Fatal(err)
	}
	if err := h.client.Complete("w", 0, 1, []byte("x")); err != nil {
		t.Fatalf("completing the first lease: %v", err)
	}
	if _, err := h.client.Submit("alice", "a3", 0, `{"p":3}`); err != nil {
		t.Fatalf("submit after slots freed: %v", err)
	}
	st, err := h.client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 2 {
		t.Fatalf("Rejected = %d, want 2", st.Rejected)
	}
}

// TestDrainStopsIntakeFinishesInFlight: drain mode is a one-way valve —
// new submissions bounce with 503 while jobs already inside run to
// completion, and Quiesced flips once the queue is empty.
func TestDrainStopsIntakeFinishesInFlight(t *testing.T) {
	h := newHarness(t, simq.Config{})
	h.submit("alice", "running", `{"p":1}`)
	pending := h.submit("alice", "queued", `{"p":2}`)
	lease, ok, err := h.client.Claim("w")
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}

	st, err := h.client.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Draining || st.Quiesced {
		t.Fatalf("after drain: draining=%v quiesced=%v, want true,false", st.Draining, st.Quiesced)
	}
	// Intake is closed.
	if _, err := h.client.Submit("bob", "late", 0, `{"p":3}`); !IsStatus(err, 503) {
		t.Fatalf("submit while draining: %v, want 503", err)
	}
	// Drain is idempotent, not an error.
	if _, err := h.client.Drain(); err != nil {
		t.Fatalf("second drain: %v", err)
	}

	// In-flight work still finishes: the leased job's completion is
	// accepted, and the still-pending job can still be claimed and run.
	if err := h.client.Complete("w", lease.Job, lease.Attempt, []byte("done")); err != nil {
		t.Fatalf("completing in-flight job during drain: %v", err)
	}
	w := &Worker{Client: h.client, Name: "w2",
		Runner: func(p string) ([]byte, error) { return []byte("done"), nil }}
	h.mustRun(w)
	if v, _ := h.client.Status(pending); v.State != "done" {
		t.Fatalf("queued job after drain = %s, want done", v.State)
	}

	st, err = h.client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Draining || !st.Quiesced {
		t.Fatalf("after finishing in-flight: draining=%v quiesced=%v, want true,true", st.Draining, st.Quiesced)
	}
	if st.Rejected != 1 || st.Done != 2 {
		t.Fatalf("stats = %+v, want 1 rejected, 2 done", st)
	}
}

// TestCompleteConflicts: the three ways a completion can be wrong — bytes
// that contradict an accepted artifact (409 + FPMismatches), a report
// against a lease the worker no longer holds (409 + StaleReports), and a
// fingerprint that does not match its own bytes (400).
func TestCompleteConflicts(t *testing.T) {
	h := newHarness(t, simq.Config{LeaseFor: 5 * sim.Second})
	job := h.submit("alice", "contested", `{"p":1}`)
	if _, ok, err := h.client.Claim("w1"); err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	if err := h.client.Complete("w1", job, 1, []byte("truth")); err != nil {
		t.Fatal(err)
	}
	// Identical duplicate: absorbed.
	if err := h.client.Complete("w1", job, 1, []byte("truth")); err != nil {
		t.Fatalf("identical duplicate rejected: %v", err)
	}
	// Same job, different bytes: the determinism contract is violated and
	// the dispatcher must say so, not shrug.
	err := h.client.Complete("w1", job, 1, []byte("lies"))
	if !IsStatus(err, 409) {
		t.Fatalf("conflicting completion: %v, want 409", err)
	}
	if !strings.Contains(err.Error(), "determinism") {
		t.Fatalf("conflict error does not name the broken contract: %v", err)
	}

	// Stale report: w2's lease expires and the job is re-leased to w3.
	// w2's late report against its dead lease must bounce without touching
	// the live one.
	late := h.submit("alice", "slow-worker", `{"p":2}`)
	if _, ok, err := h.client.Claim("w2"); err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	h.clock.Advance(int64(6 * sim.Second))
	// The sweep requeues the job under backoff; the re-lease comes after.
	if _, ok, err := h.client.Claim("w3"); err != nil || ok {
		t.Fatalf("claim during retry backoff: ok=%v err=%v", ok, err)
	}
	h.clock.Advance(int64(2 * sim.Second))
	release, ok, err := h.client.Claim("w3")
	if err != nil || !ok {
		t.Fatalf("re-claim: ok=%v err=%v", ok, err)
	}
	if err := h.client.Complete("w2", late, 1, []byte("w2 late artifact")); !IsStatus(err, 409) {
		t.Fatalf("stale completion: %v, want 409", err)
	}
	if err := h.client.Complete("w3", release.Job, release.Attempt, []byte("w3 artifact")); err != nil {
		t.Fatalf("live lease's completion after stale report: %v", err)
	}
	if v, _ := h.client.Status(late); v.State != "done" || v.Attempt != 2 {
		t.Fatalf("late job = %s attempt %d, want done attempt 2", v.State, v.Attempt)
	}

	// A self-inconsistent report (fp does not hash the bytes) is a 400.
	body, _ := json.Marshal(simq.CompleteRequest{
		Worker: "w1", Job: job, Attempt: 1, FP: "not-a-real-fp", Artifact: []byte("truth")})
	resp, err := http.Post(h.hs.URL+simq.PathComplete, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched fingerprint: status %d, want 400", resp.StatusCode)
	}

	st, err := h.client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplicates != 1 || st.FPMismatches != 1 || st.StaleReports != 1 {
		t.Fatalf("stats = %+v, want duplicates=1 fpMismatches=1 staleReports=1", st)
	}
}

// TestHandlerValidation sweeps the HTTP edge: wrong methods, bad bodies,
// unknown jobs, and the not-finished result state.
func TestHandlerValidation(t *testing.T) {
	h := newHarness(t, simq.Config{})

	// Wrong method on a POST path.
	resp, err := http.Get(h.hs.URL + simq.PathSubmit)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on submit: %d, want 405", resp.StatusCode)
	}

	// Unparseable body.
	resp, err = http.Post(h.hs.URL+simq.PathSubmit, "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d, want 400", resp.StatusCode)
	}

	// Submit without a client identity.
	if _, err := h.client.Submit("", "anon", 0, `{"p":1}`); !IsStatus(err, 400) {
		t.Fatalf("anonymous submit: %v, want 400", err)
	}
	// Claim without a worker identity.
	if _, _, err := h.client.Claim(""); !IsStatus(err, 400) {
		t.Fatalf("anonymous claim: %v, want 400", err)
	}

	// Unknown job everywhere it can be named.
	if _, err := h.client.Status(99); !IsStatus(err, 404) {
		t.Fatalf("status of unknown job: %v, want 404", err)
	}
	if _, err := h.client.Result(99); !IsStatus(err, 404) {
		t.Fatalf("result of unknown job: %v, want 404", err)
	}
	if err := h.client.Cancel(99); !IsStatus(err, 404) {
		t.Fatalf("cancel of unknown job: %v, want 404", err)
	}
	if err := h.client.Complete("w", 99, 1, []byte("x")); !IsStatus(err, 404) {
		t.Fatalf("complete of unknown job: %v, want 404", err)
	}

	// Result of an unfinished job: 202, try again later.
	job := h.submit("alice", "pending", `{"p":1}`)
	if _, err := h.client.Result(job); !IsStatus(err, 202) {
		t.Fatalf("result of pending job: %v, want 202", err)
	}

	// Jobs listing reflects the one submission.
	vs, err := h.client.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].ID != job || vs[0].State != "pending" {
		t.Fatalf("jobs listing = %+v", vs)
	}
}

// TestCancelLifecycle: cancel withdraws pending and leased jobs (freeing
// quota), and refuses to rewrite history on finished ones.
func TestCancelLifecycle(t *testing.T) {
	h := newHarness(t, simq.Config{QuotaPerClient: 1})
	job := h.submit("alice", "doomed", `{"p":1}`)
	// Quota full; cancel frees it.
	if _, err := h.client.Submit("alice", "blocked", 0, `{"p":2}`); !IsStatus(err, 429) {
		t.Fatalf("expected quota rejection, got %v", err)
	}
	if err := h.client.Cancel(job); err != nil {
		t.Fatal(err)
	}
	if v, _ := h.client.Status(job); v.State != "canceled" {
		t.Fatalf("canceled job state = %s", v.State)
	}
	if _, err := h.client.Result(job); !IsStatus(err, 410) {
		t.Fatalf("result of canceled job: %v, want 410", err)
	}
	// The slot is free again.
	job2 := h.submit("alice", "second", `{"p":2}`)
	w := &Worker{Client: h.client, Name: "w",
		Runner: func(p string) ([]byte, error) { return []byte("x"), nil }}
	h.mustRun(w)
	// Done jobs cannot be canceled.
	if err := h.client.Cancel(job2); !IsStatus(err, 409) {
		t.Fatalf("cancel of done job: %v, want 409", err)
	}
	// Double cancel is also a 409.
	if err := h.client.Cancel(job); !IsStatus(err, 409) {
		t.Fatalf("double cancel: %v, want 409", err)
	}
}
