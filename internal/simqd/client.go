package simqd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"hplsim/internal/simq"
)

// StatusError is a non-2xx dispatcher reply.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("simqd: dispatcher replied %d: %s", e.Code, e.Msg)
}

// IsStatus reports whether err is a StatusError with the given HTTP code.
func IsStatus(err error, code int) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == code
}

// Client is a synchronous dispatcher client — one request, one reply, no
// background machinery. psq wraps it; the worker loop drives it.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient talks to the dispatcher at base (e.g. "http://127.0.0.1:8347").
func NewClient(base string) *Client {
	return &Client{base: base, hc: &http.Client{}}
}

// post sends req as JSON and decodes the 200 reply into out (out may be
// nil). A 204 returns (false, nil): nothing available. Non-2xx replies
// return a *StatusError carrying the dispatcher's message.
func (c *Client) post(path string, req, out any) (bool, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return false, fmt.Errorf("simqd: encoding request: %w", err)
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return false, fmt.Errorf("simqd: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return false, decodeError(resp)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return false, fmt.Errorf("simqd: decoding %s reply: %w", path, err)
		}
	}
	return true, nil
}

func (c *Client) get(path string, query url.Values, out any) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	resp, err := c.hc.Get(u)
	if err != nil {
		return fmt.Errorf("simqd: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	var er simq.ErrorReply
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
		er.Error = resp.Status
	}
	return &StatusError{Code: resp.StatusCode, Msg: er.Error}
}

// Submit queues one job and returns its ID.
func (c *Client) Submit(client, name string, prio int, payload string) (int, error) {
	var reply simq.SubmitReply
	_, err := c.post(simq.PathSubmit, simq.SubmitRequest{
		Client: client, Name: name, Prio: prio, Payload: payload}, &reply)
	return reply.Job, err
}

// Claim asks for the next runnable job. ok is false when the queue has
// nothing runnable right now.
func (c *Client) Claim(worker string) (reply simq.ClaimReply, ok bool, err error) {
	ok, err = c.post(simq.PathClaim, simq.ClaimRequest{Worker: worker}, &reply)
	return reply, ok, err
}

// Complete uploads a result artifact for a leased job. The fingerprint is
// computed here: the wire carries both so the dispatcher can cross-check.
func (c *Client) Complete(worker string, job, attempt int, artifact []byte) error {
	_, err := c.post(simq.PathComplete, simq.CompleteRequest{
		Worker: worker, Job: job, Attempt: attempt,
		FP: simq.FingerprintString(simq.Fingerprint(artifact)), Artifact: artifact}, nil)
	return err
}

// Fail reports a worker-side execution failure.
func (c *Client) Fail(worker string, job, attempt int, msg string) error {
	_, err := c.post(simq.PathFail, simq.FailRequest{
		Worker: worker, Job: job, Attempt: attempt, Err: msg}, nil)
	return err
}

// Cancel withdraws a pending or leased job.
func (c *Client) Cancel(job int) error {
	_, err := c.post(simq.PathCancel, simq.CancelRequest{Job: job}, nil)
	return err
}

// Status fetches one job's view.
func (c *Client) Status(job int) (simq.JobView, error) {
	var v simq.JobView
	err := c.get(simq.PathStatus, url.Values{"job": {fmt.Sprint(job)}}, &v)
	return v, err
}

// Jobs lists every job in submission order.
func (c *Client) Jobs() ([]simq.JobView, error) {
	var vs []simq.JobView
	err := c.get(simq.PathJobs, nil, &vs)
	return vs, err
}

// Result fetches a done job's artifact bytes. A 202 StatusError means the
// job has not finished; 410 means it failed or was canceled.
func (c *Client) Result(job int) ([]byte, error) {
	resp, err := c.hc.Get(c.base + simq.PathResult + "?job=" + fmt.Sprint(job))
	if err != nil {
		return nil, fmt.Errorf("simqd: result: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Drain puts the dispatcher in drain mode (idempotent) and returns stats.
func (c *Client) Drain() (simq.StatsReply, error) {
	var reply simq.StatsReply
	_, err := c.post(simq.PathDrain, struct{}{}, &reply)
	return reply, err
}

// Stats fetches the queue aggregate and traffic counters.
func (c *Client) Stats() (simq.StatsReply, error) {
	var reply simq.StatsReply
	err := c.get(simq.PathStats, nil, &reply)
	return reply, err
}

// Wait polls until the job leaves the queue (done, failed, or canceled)
// and returns its final view. poll is the sleep between status reads.
func (c *Client) Wait(job int, poll time.Duration) (simq.JobView, error) {
	for {
		v, err := c.Status(job)
		if err != nil {
			return v, err
		}
		switch v.State {
		case "done", "failed", "canceled":
			return v, nil
		}
		time.Sleep(poll)
	}
}
