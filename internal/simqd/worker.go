package simqd

import (
	"fmt"
	"time"

	"hplsim/internal/experiments"
	"hplsim/internal/simq"
)

// RunJobPayload is the standard payload runner: parse the payload as an
// experiments.Payload and execute the measured run. The artifact is a pure
// function of the payload bytes (experiments' determinism contract), which
// is exactly what the dispatcher's fingerprint verification assumes.
func RunJobPayload(payload string) ([]byte, error) {
	p, err := experiments.ParsePayload([]byte(payload))
	if err != nil {
		return nil, err
	}
	return experiments.RunPayload(p)
}

// Worker is the synchronous execution loop: claim a lease, run the
// payload, report the artifact. Chaos faults rehearse the failure paths
// deterministically — a crashed worker simply stops touching its lease and
// lets it expire, a dropped result spends the compute but reports nothing,
// a duplicate delivery reports twice and expects the second to be an
// idempotent no-op.
type Worker struct {
	Client *Client
	// Name identifies this worker on claims and reports.
	Name string
	// Chaos injects faults keyed by (job, attempt); zero injects none.
	Chaos simq.Chaos
	// Runner executes one payload (nil = RunJobPayload).
	Runner func(payload string) ([]byte, error)
}

// RunOne claims and processes at most one job. claimed reports whether a
// lease was obtained (even if chaos then crashed or muted the worker —
// the lease is spent either way and recovery is the dispatcher's job).
func (w *Worker) RunOne() (claimed bool, err error) {
	lease, ok, err := w.Client.Claim(w.Name)
	if err != nil || !ok {
		return false, err
	}
	job, attempt := uint64(lease.Job), uint64(lease.Attempt)
	if w.Chaos.Hit(simq.FaultWorkerCrash, job, attempt) {
		// Simulated crash after claim: abandon the lease without a word.
		// The dispatcher's expiry sweep requeues the job.
		return true, nil
	}
	runner := w.Runner
	if runner == nil {
		runner = RunJobPayload
	}
	artifact, rerr := runner(lease.Payload)
	if rerr != nil {
		if ferr := w.Client.Fail(w.Name, lease.Job, lease.Attempt, rerr.Error()); ferr != nil {
			return true, fmt.Errorf("simqd: reporting failure of job %d: %w", lease.Job, ferr)
		}
		return true, nil
	}
	if w.Chaos.Hit(simq.FaultDropResult, job, attempt) {
		// The run happened, the report is lost: same recovery path as a
		// crash, but the retry must reproduce these exact bytes.
		return true, nil
	}
	if err := w.Client.Complete(w.Name, lease.Job, lease.Attempt, artifact); err != nil {
		return true, fmt.Errorf("simqd: reporting job %d: %w", lease.Job, err)
	}
	if w.Chaos.Hit(simq.FaultDuplicateDelivery, job, attempt) {
		// Send the identical report again; the dispatcher must absorb it.
		if err := w.Client.Complete(w.Name, lease.Job, lease.Attempt, artifact); err != nil {
			return true, fmt.Errorf("simqd: duplicate delivery of job %d rejected: %w", lease.Job, err)
		}
	}
	return true, nil
}

// DrainQueue processes jobs until a claim comes back empty, returning how
// many leases were obtained.
func (w *Worker) DrainQueue() (int, error) {
	n := 0
	for {
		claimed, err := w.RunOne()
		if err != nil {
			return n, err
		}
		if !claimed {
			return n, nil
		}
		n++
	}
}

// Serve polls the dispatcher forever: drain the queue, sleep, repeat.
// Returns only on error. This is simqd -worker / psq work.
func (w *Worker) Serve(poll time.Duration) error {
	for {
		claimed, err := w.RunOne()
		if err != nil {
			return err
		}
		if !claimed {
			time.Sleep(poll)
		}
	}
}
