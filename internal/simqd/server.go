package simqd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"hplsim/internal/simq"
)

// Server is the dispatcher: a journaled simq.State behind an HTTP/JSON
// API. Every mutation follows the write-ahead protocol — decide the
// record, append it to the journal, then Apply it — so a dispatcher killed
// at any instant recovers its exact queue state by replaying the journal
// (Open does precisely that). Handlers are serialized by one mutex: the
// queue is a decision log, not a throughput engine, and a total order of
// transitions is what makes the journal an oracle.
type Server struct {
	mu    sync.Mutex
	st    *simq.State
	jw    *simq.JournalWriter
	jf    *os.File
	spool string
	clock Clock

	// Service-level traffic counters (outside the journaled truth).
	rejected     uint64
	duplicates   uint64
	fpMismatches uint64
	staleReports uint64
}

// Open recovers (or creates) a dispatcher over dir. The journal lives at
// dir/journal.jsonl; artifacts spool under dir/spool. A torn trailing
// record — the footprint of a crash mid-append — is truncated away; any
// other corruption is an error. A nil clock selects a HostClock resuming
// from the last journaled stamp.
func Open(dir string, cfg simq.Config, clock Clock) (*Server, error) {
	spool := filepath.Join(dir, "spool")
	if err := os.MkdirAll(spool, 0o755); err != nil {
		return nil, fmt.Errorf("simqd: creating spool: %w", err)
	}
	jf, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("simqd: opening journal: %w", err)
	}
	recs, goodBytes, err := simq.RecoverJournal(jf)
	if err != nil {
		jf.Close()
		return nil, fmt.Errorf("simqd: reading journal: %w", err)
	}
	if err := jf.Truncate(goodBytes); err != nil {
		jf.Close()
		return nil, fmt.Errorf("simqd: truncating torn journal tail: %w", err)
	}
	if _, err := jf.Seek(goodBytes, 0); err != nil {
		jf.Close()
		return nil, fmt.Errorf("simqd: seeking journal: %w", err)
	}
	st, err := simq.Replay(cfg, recs)
	if err != nil {
		jf.Close()
		return nil, fmt.Errorf("simqd: replaying journal: %w", err)
	}
	if clock == nil {
		clock = NewHostClock(st.LastStamp())
	}
	return &Server{
		st:    st,
		jw:    simq.NewJournalWriter(jf),
		jf:    jf,
		spool: spool,
		clock: clock,
	}, nil
}

// Close releases the journal file. The in-memory state is disposable by
// design: reopening the directory rebuilds it.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jf.Close()
}

// Snapshot renders the canonical queue state (the crash-recovery oracle).
func (s *Server) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Snapshot()
}

// Stats reports the queue aggregate and traffic counters.
func (s *Server) Stats() simq.StatsReply {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

// Seq reports the last journaled record sequence number.
func (s *Server) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Seq()
}

// now reads the clock, clamped so stamps never regress below the last
// journaled record (the journal's monotonicity contract).
func (s *Server) now() int64 {
	n := s.clock.Now()
	if last := s.st.LastStamp(); n < last {
		n = last
	}
	return n
}

// commit is the write-ahead path: assign the next sequence number, append
// to the journal, then apply. An Apply failure after a successful append
// means the decision logic and the state machine disagree — a bug, not a
// runtime condition — and is surfaced as a 500 by the callers.
func (s *Server) commit(rec simq.Record) (simq.Record, error) {
	rec.Seq = s.st.NextSeq()
	if err := s.jw.Append(rec); err != nil {
		return rec, fmt.Errorf("simqd: journal append: %w", err)
	}
	if err := s.st.Apply(rec); err != nil {
		return rec, fmt.Errorf("simqd: journaled record refused by state (journal/logic divergence): %w", err)
	}
	return rec, nil
}

// sweepExpired journals expire records for every lease past its deadline
// at now. Called before serving claims: expiry is observed lazily, when
// the queue is next asked for work, not by a background timer.
func (s *Server) sweepExpired(now int64) error {
	for {
		job, attempt, ok := s.st.NextExpiry(now)
		if !ok {
			return nil
		}
		rec := simq.Record{Op: simq.OpExpire, T: now, Job: job, Attempt: attempt,
			NB: s.st.ExpiryDisposition(now, attempt)}
		if _, err := s.commit(rec); err != nil {
			return err
		}
	}
}

// Handler returns the dispatcher's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(simq.PathSubmit, s.handleSubmit)
	mux.HandleFunc(simq.PathClaim, s.handleClaim)
	mux.HandleFunc(simq.PathComplete, s.handleComplete)
	mux.HandleFunc(simq.PathFail, s.handleFail)
	mux.HandleFunc(simq.PathCancel, s.handleCancel)
	mux.HandleFunc(simq.PathStatus, s.handleStatus)
	mux.HandleFunc(simq.PathJobs, s.handleJobs)
	mux.HandleFunc(simq.PathResult, s.handleResult)
	mux.HandleFunc(simq.PathDrain, s.handleDrain)
	mux.HandleFunc(simq.PathStats, s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck — the response is already committed
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, simq.ErrorReply{Error: fmt.Sprintf(format, args...)})
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req simq.SubmitRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Client == "" || req.Name == "" {
		writeErr(w, http.StatusBadRequest, "submit needs client and name")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.st.SubmitErr(req.Client); err != nil {
		s.rejected++
		code := http.StatusTooManyRequests
		if err == simq.ErrDraining {
			code = http.StatusServiceUnavailable
		}
		writeErr(w, code, "%v", err)
		return
	}
	rec := simq.Record{Op: simq.OpSubmit, T: s.now(), Job: s.st.NextID(),
		Client: req.Client, Name: req.Name, Prio: req.Prio, Payload: req.Payload}
	if _, err := s.commit(rec); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, simq.SubmitReply{Job: rec.Job})
}

func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req simq.ClaimRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeErr(w, http.StatusBadRequest, "claim needs a worker name")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	if err := s.sweepExpired(now); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	job, attempt, ok := s.st.PeekClaim(now)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	deadline := now + int64(s.st.Config().LeaseFor)
	rec := simq.Record{Op: simq.OpClaim, T: now, Job: job, Worker: req.Worker,
		Attempt: attempt, Deadline: deadline}
	if _, err := s.commit(rec); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	v, _ := s.st.Job(job)
	payload, _ := s.st.Payload(job)
	writeJSON(w, http.StatusOK, simq.ClaimReply{
		Job: job, Name: v.Name, Attempt: attempt, Payload: payload, Deadline: deadline,
	})
}

func (s *Server) spoolPath(job int) string {
	return filepath.Join(s.spool, fmt.Sprintf("job-%06d.artifact", job))
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req simq.CompleteRequest
	if !decode(w, r, &req) {
		return
	}
	// The report must be internally consistent before anything else: the
	// fingerprint field is the worker's claim about its own bytes.
	fp := simq.FingerprintString(simq.Fingerprint(req.Artifact))
	if req.FP != fp {
		writeErr(w, http.StatusBadRequest,
			"artifact fingerprint %s does not match its bytes (%s)", req.FP, fp)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.st.Job(req.Job)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %d", req.Job)
		return
	}
	if v.State == "done" {
		// Duplicate delivery. The determinism contract says a re-run —
		// and therefore a re-send — carries identical bytes; verify, then
		// treat as an idempotent no-op.
		if v.FP == req.FP {
			s.duplicates++
			writeJSON(w, http.StatusOK, simq.SubmitReply{Job: req.Job})
			return
		}
		s.fpMismatches++
		writeErr(w, http.StatusConflict,
			"job %d already has artifact %s; duplicate delivery carries %s — determinism contract violated",
			req.Job, v.FP, req.FP)
		return
	}
	if v.State != "leased" || v.Attempt != req.Attempt || v.Worker != req.Worker {
		s.staleReports++
		writeErr(w, http.StatusConflict,
			"job %d is %s (attempt %d, worker %q); stale report from %q attempt %d",
			req.Job, v.State, v.Attempt, v.Worker, req.Worker, req.Attempt)
		return
	}
	// Spool the artifact before journaling the completion: once the
	// record lands, the result must be servable. Write-then-rename keeps
	// a crash from leaving a half-written artifact behind a committed
	// record.
	tmp := s.spoolPath(req.Job) + ".tmp"
	if err := os.WriteFile(tmp, req.Artifact, 0o644); err != nil {
		writeErr(w, http.StatusInternalServerError, "spooling artifact: %v", err)
		return
	}
	if err := os.Rename(tmp, s.spoolPath(req.Job)); err != nil {
		writeErr(w, http.StatusInternalServerError, "spooling artifact: %v", err)
		return
	}
	rec := simq.Record{Op: simq.OpComplete, T: s.now(), Job: req.Job,
		Worker: req.Worker, Attempt: req.Attempt, FP: req.FP, Bytes: len(req.Artifact)}
	if _, err := s.commit(rec); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, simq.SubmitReply{Job: req.Job})
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req simq.FailRequest
	if !decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.st.Job(req.Job)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %d", req.Job)
		return
	}
	if v.State != "leased" || v.Attempt != req.Attempt || v.Worker != req.Worker {
		s.staleReports++
		writeErr(w, http.StatusConflict, "job %d is %s; stale failure report", req.Job, v.State)
		return
	}
	now := s.now()
	rec := simq.Record{Op: simq.OpFail, T: now, Job: req.Job, Worker: req.Worker,
		Attempt: req.Attempt, Err: req.Err, NB: s.st.ExpiryDisposition(now, req.Attempt)}
	if _, err := s.commit(rec); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, simq.SubmitReply{Job: req.Job})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	var req simq.CancelRequest
	if !decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.st.Job(req.Job)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %d", req.Job)
		return
	}
	if v.State != "pending" && v.State != "leased" {
		writeErr(w, http.StatusConflict, "job %d is already %s", req.Job, v.State)
		return
	}
	rec := simq.Record{Op: simq.OpCancel, T: s.now(), Job: req.Job}
	if _, err := s.commit(rec); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, simq.SubmitReply{Job: req.Job})
}

// jobParam parses the ?job=N query parameter.
func jobParam(r *http.Request) (int, error) {
	q := r.URL.Query().Get("job")
	if q == "" {
		return 0, fmt.Errorf("missing job parameter")
	}
	return strconv.Atoi(q)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, err := jobParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	v, ok := s.st.Job(job)
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %d", job)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := s.st.Jobs()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, err := jobParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	v, ok := s.st.Job(job)
	path := s.spoolPath(job)
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %d", job)
		return
	}
	switch v.State {
	case "done":
		b, err := os.ReadFile(path)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "reading artifact: %v", err)
			return
		}
		if got := simq.FingerprintString(simq.Fingerprint(b)); got != v.FP {
			writeErr(w, http.StatusInternalServerError,
				"spooled artifact fingerprints to %s, journal says %s — spool corruption", got, v.FP)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(b) //nolint:errcheck — the response is already committed
	case "failed", "canceled":
		writeErr(w, http.StatusGone, "job %d %s: %s", job, v.State, v.Err)
	default:
		writeErr(w, http.StatusAccepted, "job %d is %s", job, v.State)
	}
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.st.Draining() {
		rec := simq.Record{Op: simq.OpDrain, T: s.now()}
		if _, err := s.commit(rec); err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, s.statsLocked())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	reply := s.statsLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, reply)
}

func (s *Server) statsLocked() simq.StatsReply {
	return simq.StatsReply{
		Stats:        s.st.Stats(),
		Rejected:     s.rejected,
		Duplicates:   s.duplicates,
		FPMismatches: s.fpMismatches,
		StaleReports: s.staleReports,
	}
}
