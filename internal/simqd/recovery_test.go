package simqd

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"hplsim/internal/sim"
	"hplsim/internal/simq"
)

// sessionJournal drives a dispatcher through a busy session — submits,
// claims, a failure with retry, an expiry, completions, a cancel, a drain
// — and returns its journal bytes plus the final canonical snapshot.
func sessionJournal(t *testing.T) (cfg simq.Config, journal []byte, final []byte) {
	t.Helper()
	cfg = simq.Config{LeaseFor: 5 * sim.Second, MaxAttempts: 3, BackoffBase: sim.Second}
	h := newHarness(t, cfg)
	fast := func(payload string) ([]byte, error) { return []byte("artifact:" + payload), nil }
	sad := func(payload string) ([]byte, error) { return nil, os.ErrInvalid }
	w := &Worker{Client: h.client, Name: "w1", Runner: fast}
	crashy := &Worker{Client: h.client, Name: "w2", Runner: fast,
		Chaos: simq.Chaos{Seed: 9, WorkerCrash: 1}}

	a := h.submit("alice", "a", `{"p":1}`)
	h.submit("alice", "b", `{"p":2}`)
	h.submit("bob", "c", `{"p":3}`)
	h.mustRun(w) // completes one job
	h.mustRun(crashy)
	h.clock.Advance(int64(6 * sim.Second)) // the crashed lease expires
	failing := &Worker{Client: h.client, Name: "w3", Runner: sad}
	h.mustRun(failing) // fails the remaining pending job
	h.clock.Advance(int64(3 * sim.Second))
	h.mustRun(w) // retry of one of the requeued jobs
	if err := h.client.Cancel(a); err != nil && !IsStatus(err, 409) {
		t.Fatalf("cancel: %v", err)
	}
	if _, err := h.client.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	journal, err := os.ReadFile(filepath.Join(h.dir, "journal.jsonl"))
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	if len(journal) == 0 {
		t.Fatal("session produced an empty journal")
	}
	return cfg, journal, h.srv.Snapshot()
}

// TestDispatcherCrashRecoveryAtEveryOffset kills the dispatcher at every
// journal offset — every record boundary, and torn mid-record tails — and
// demands the restarted dispatcher recover exactly the state the journal
// prefix describes (the uninterrupted run's state at that point, per
// simq's replay oracle).
func TestDispatcherCrashRecoveryAtEveryOffset(t *testing.T) {
	cfg, journal, final := sessionJournal(t)
	recs, err := simq.ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatalf("session journal does not parse: %v", err)
	}
	if len(recs) < 10 {
		t.Fatalf("session journal has only %d records", len(recs))
	}

	// Record-boundary kills: the dispatcher died after fsyncing record n.
	offsets := []int64{0}
	var off int64
	for _, r := range recs {
		off += int64(len(r.AppendJSONL(nil)))
		offsets = append(offsets, off)
	}
	for n, off := range offsets {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), journal[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		srv, err := Open(dir, cfg, &FakeClock{})
		if err != nil {
			t.Fatalf("offset %d: Open: %v", off, err)
		}
		want, err := simq.Replay(cfg, recs[:n])
		if err != nil {
			t.Fatalf("offset %d: reference replay: %v", off, err)
		}
		if !bytes.Equal(srv.Snapshot(), want.Snapshot()) {
			t.Errorf("record boundary %d: recovered state differs from the uninterrupted run", n)
		}
		srv.Close()
	}

	// Torn-tail kills: the crash interrupted an append mid-record. The
	// torn bytes are discarded and the state is the previous boundary's.
	for n := 1; n < len(offsets); n++ {
		cut := (offsets[n-1] + offsets[n]) / 2
		if cut == offsets[n-1] {
			continue
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), journal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		srv, err := Open(dir, cfg, &FakeClock{})
		if err != nil {
			t.Fatalf("torn cut %d: Open: %v", cut, err)
		}
		want, _ := simq.Replay(cfg, recs[:n-1])
		if !bytes.Equal(srv.Snapshot(), want.Snapshot()) {
			t.Errorf("torn cut %d: recovered state differs from record boundary %d", cut, n-1)
		}
		// The torn tail was truncated on disk, not just skipped in memory.
		srv.Close()
		b, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(b)) != offsets[n-1] {
			t.Errorf("torn cut %d: journal is %d bytes after recovery, want %d", cut, len(b), offsets[n-1])
		}
	}

	// The full journal recovers the final state.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), journal, 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := Open(dir, cfg, &FakeClock{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !bytes.Equal(srv.Snapshot(), final) {
		t.Error("full-journal recovery differs from the live dispatcher's final state")
	}
}

// TestRecoveredDispatcherResumesService: after a crash and restart the
// dispatcher is not just consistent but alive — it accepts new work,
// honors old leases' expiries, and serves previously spooled artifacts.
func TestRecoveredDispatcherResumesService(t *testing.T) {
	cfg := simq.Config{LeaseFor: 5 * sim.Second}
	dir := t.TempDir()
	clock := &FakeClock{}
	clock.Set(int64(sim.Second))
	srv, err := Open(dir, cfg, clock)
	if err != nil {
		t.Fatal(err)
	}
	// Session one: complete job 0, leave job 1 leased, then "crash"
	// (close without drain).
	run := func(s *Server, fn func(c *Client)) {
		hs := httptest.NewServer(s.Handler())
		defer hs.Close()
		fn(NewClient(hs.URL))
	}
	var artifact0 []byte
	run(srv, func(c *Client) {
		if _, err := c.Submit("alice", "done-before-crash", 0, `{"p":1}`); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Submit("alice", "leased-at-crash", 0, `{"p":2}`); err != nil {
			t.Fatal(err)
		}
		w := &Worker{Client: c, Name: "w1",
			Runner: func(p string) ([]byte, error) { return []byte("result:" + p), nil }}
		if _, err := w.RunOne(); err != nil {
			t.Fatal(err)
		}
		lease, ok, err := c.Claim("w2")
		if err != nil || !ok {
			t.Fatalf("claim: ok=%v err=%v", ok, err)
		}
		if lease.Job != 1 {
			t.Fatalf("leased job %d, want 1", lease.Job)
		}
		if artifact0, err = c.Result(0); err != nil {
			t.Fatal(err)
		}
	})
	srv.Close() // crash: no drain, lease 1 still out

	// Session two: reopen the same directory. The completed artifact is
	// still served; the orphaned lease expires and the job is rerun.
	clock.Advance(int64(10 * sim.Second))
	srv2, err := Open(dir, cfg, clock)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer srv2.Close()
	run(srv2, func(c *Client) {
		got, err := c.Result(0)
		if err != nil {
			t.Fatalf("artifact lost across restart: %v", err)
		}
		if !bytes.Equal(got, artifact0) {
			t.Fatal("artifact changed across restart")
		}
		// w2's lease is expired; a new claim sweeps it. One more advance
		// lets the retry cool, then the job runs to completion.
		w := &Worker{Client: c, Name: "w3",
			Runner: func(p string) ([]byte, error) { return []byte("result:" + p), nil }}
		if claimed, err := w.RunOne(); err != nil || claimed {
			t.Fatalf("claim during post-crash backoff: claimed=%v err=%v", claimed, err)
		}
		clock.Advance(int64(2 * sim.Second))
		if claimed, err := w.RunOne(); err != nil || !claimed {
			t.Fatalf("post-recovery claim: claimed=%v err=%v", claimed, err)
		}
		v, err := c.Status(1)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != "done" || v.Attempt != 2 {
			t.Fatalf("job 1 after recovery = %s attempt %d, want done attempt 2", v.State, v.Attempt)
		}
		// New submissions still work on the recovered dispatcher.
		if _, err := c.Submit("bob", "post-crash", 0, `{"p":3}`); err != nil {
			t.Fatalf("submit after recovery: %v", err)
		}
	})
}

// TestChaosDispatcherCrashes drives a whole workload through a dispatcher
// that is killed and restarted between operations whenever the seeded
// DispatcherCrash fault fires. However the crashes land, every job still
// runs to completion and the surviving state equals its journal's replay.
func TestChaosDispatcherCrashes(t *testing.T) {
	cfg := simq.Config{LeaseFor: 5 * sim.Second}
	chaos := simq.Chaos{Seed: 42, DispatcherCrash: 0.4}
	dir := t.TempDir()
	clock := &FakeClock{}
	clock.Set(int64(sim.Second))

	srv, err := Open(dir, cfg, clock)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	client := NewClient(hs.URL)
	crashes := 0
	// maybeCrash consults the fault between operations, keyed by the
	// journal sequence so the crash schedule is a pure function of the
	// seed and the workload.
	maybeCrash := func() {
		if !chaos.Hit(simq.FaultDispatcherCrash, srv.Seq(), 0) {
			return
		}
		hs.Close()
		srv.Close()
		crashes++
		srv, err = Open(dir, cfg, clock)
		if err != nil {
			t.Fatalf("reopen after chaos crash %d: %v", crashes, err)
		}
		hs = httptest.NewServer(srv.Handler())
		client = NewClient(hs.URL)
	}
	defer func() { hs.Close(); srv.Close() }()

	runner := func(p string) ([]byte, error) { return []byte("out:" + p), nil }
	jobs := make([]int, 0, 6)
	for i := 0; i < 6; i++ {
		job, err := client.Submit("alice", fmt.Sprintf("job-%d", i), 0, fmt.Sprintf(`{"p":%d}`, i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, job)
		maybeCrash()
	}
	for guard := 0; ; guard++ {
		if guard > 100 {
			t.Fatal("queue did not drain in 100 worker passes")
		}
		w := &Worker{Client: client, Name: fmt.Sprintf("w-%d", guard), Runner: runner}
		claimed, err := w.RunOne()
		if err != nil {
			t.Fatal(err)
		}
		maybeCrash()
		if claimed {
			continue
		}
		if st, err := client.Stats(); err != nil {
			t.Fatal(err)
		} else if st.Done == len(jobs) {
			break
		}
		// Nothing claimable but work remains: leases orphaned by crashes
		// are cooling; advance past lease + backoff.
		clock.Advance(int64(7 * sim.Second))
	}
	if crashes == 0 {
		t.Fatal("chaos never fired; the test is vacuous — pick a hotter seed")
	}
	for _, job := range jobs {
		b, err := client.Result(job)
		if err != nil {
			t.Fatalf("result of job %d after %d crashes: %v", job, crashes, err)
		}
		if want := fmt.Sprintf("out:{\"p\":%d}", job); string(b) != want {
			t.Fatalf("job %d artifact = %q, want %q", job, b, want)
		}
	}
	// The survivor equals its own journal's replay.
	raw, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := simq.ReadJournal(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want, err := simq.Replay(cfg, recs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(srv.Snapshot(), want.Snapshot()) {
		t.Error("post-chaos state differs from its journal's replay")
	}
	t.Logf("survived %d chaos crashes", crashes)
}

// TestOpenRejectsInteriorCorruption: recovery tolerates exactly the damage
// a crash can cause (a torn tail); flipped bytes mid-journal are refused,
// not papered over.
func TestOpenRejectsInteriorCorruption(t *testing.T) {
	_, journal, _ := sessionJournal(t)
	corrupt := append([]byte{}, journal...)
	corrupt[10] ^= 0xff
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if srv, err := Open(dir, simq.Config{}, &FakeClock{}); err == nil {
		srv.Close()
		t.Fatal("Open accepted a journal with interior corruption")
	}
}
