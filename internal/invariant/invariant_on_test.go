//go:build invariants

package invariant

import "testing"

func TestEnabled(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under -tags invariants")
	}
}

func TestCheckPanicsOnViolation(t *testing.T) {
	defer func() {
		r := recover()
		v, ok := r.(Violation)
		if !ok {
			t.Fatalf("expected Violation panic, got %v", r)
		}
		if v.Msg != "boom 7" {
			t.Fatalf("unexpected message %q", v.Msg)
		}
	}()
	Check(true, "fine")
	Check(false, "boom %d", 7)
	t.Fatal("Check(false) did not panic")
}
