//go:build !invariants

package invariant

// Enabled reports whether invariant checking is compiled in.
const Enabled = false

// Check is a no-op in normal builds.
func Check(cond bool, format string, args ...any) {}
