//go:build invariants

package invariant

// Enabled reports whether invariant checking is compiled in.
const Enabled = true

// Check panics with a Violation when cond is false.
func Check(cond bool, format string, args ...any) {
	if !cond {
		Violated(format, args...)
	}
}
