// Package invariant provides machine-checked structural invariants for the
// deterministic simulation core, compiled in only under the `invariants`
// build tag:
//
//	go test -tags invariants ./...
//
// In a normal build Enabled is the constant false and Check compiles to a
// no-op, so instrumented hot paths written as
//
//	if invariant.Enabled {
//		t.checkInvariants()
//	}
//
// are eliminated entirely by the compiler. Under the tag every check runs
// and a violation panics with a Violation describing what broke, turning
// subtle state corruption (a task on two runqueues, a red-red edge, a
// min-vruntime that went backwards) into an immediate, attributable failure
// instead of a silently wrong experiment.
package invariant

import "fmt"

// Violation is the panic value raised by a failed check, so tests can
// distinguish invariant failures from unrelated panics.
type Violation struct {
	Msg string
}

func (v Violation) Error() string { return "invariant violation: " + v.Msg }

// Violated raises a Violation unconditionally. It is the building block for
// checks that compute their own condition; gate callers on Enabled.
func Violated(format string, args ...any) {
	panic(Violation{Msg: fmt.Sprintf(format, args...)})
}
