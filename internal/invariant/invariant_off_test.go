//go:build !invariants

package invariant

import "testing"

func TestDisabled(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without -tags invariants")
	}
	// Check must be inert: a false condition is ignored.
	Check(false, "must not panic")
}
